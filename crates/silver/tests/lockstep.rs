//! Theorem-(9) analog: the Silver implementation simulates the Silver
//! ISA, checked by differential lockstep execution over hand-written
//! programs, every instruction class, and randomly generated programs,
//! under fixed and random memory latencies.

use ag32::asm::Assembler;
use ag32::{encode, Func, Instr, Reg, Ri, Shift, State};
use silver::env::{Latency, MemEnvConfig};
use silver::lockstep::run_lockstep;
use testkit::prop::Ctx;
use testkit::rng::{Rng as _, TestRng};

fn state_with_code(base: u32, code: &[u8]) -> State {
    let mut s = State::new();
    s.pc = base;
    s.mem.write_bytes(base, code);
    s
}

fn cfg_fixed(lat: u32) -> MemEnvConfig {
    MemEnvConfig { mem_latency: Latency::Fixed(lat), ..MemEnvConfig::default() }
}

fn cfg_random(seed: u64) -> MemEnvConfig {
    MemEnvConfig {
        mem_latency: Latency::Random { max: 4 },
        interrupt_latency: Latency::Random { max: 4 },
        start_delay: 2,
        seed,
    }
}

#[test]
fn straightline_alu_program() {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    a.li(r(1), 0xDEAD_BEEF);
    a.li(r(2), 0x0000_FFFF);
    for func in Func::ALL {
        a.normal(func, r(3), Ri::Reg(r(1)), Ri::Reg(r(2)));
        a.normal(Func::Add, r(4), Ri::Reg(r(4)), Ri::Reg(r(3)));
    }
    a.halt(r(5));
    let s = state_with_code(0, &a.assemble().unwrap());
    let rep = run_lockstep(&s, 1000, cfg_fixed(0), 100_000).unwrap();
    assert_eq!(rep.instructions, 3 + 32);
}

#[test]
fn shifts_and_rotates() {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    a.li(r(1), 0x8000_0001);
    for kind in Shift::ALL {
        for amt in [0i8, 1, 7, 31] {
            a.shift(kind, r(2), Ri::Reg(r(1)), Ri::Imm(amt));
            a.normal(Func::Xor, r(1), Ri::Reg(r(1)), Ri::Reg(r(2)));
        }
    }
    a.halt(r(3));
    let s = state_with_code(0, &a.assemble().unwrap());
    run_lockstep(&s, 1000, cfg_fixed(1), 100_000).unwrap();
}

#[test]
fn memory_traffic_words_and_bytes() {
    let mut a = Assembler::new(0x100);
    let r = Reg::new;
    a.li(r(1), 0x2000);
    a.li(r(2), 0xA1B2_C3D4);
    a.instr(Instr::StoreMem { a: Ri::Reg(r(2)), b: Ri::Reg(r(1)) });
    a.instr(Instr::LoadMem { w: r(3), a: Ri::Reg(r(1)) });
    // Byte stores to each lane, byte loads back.
    for lane in 0..4i8 {
        a.normal(Func::Add, r(4), Ri::Reg(r(1)), Ri::Imm(lane));
        a.normal(Func::Add, r(5), Ri::Imm(lane), Ri::Imm(17));
        a.instr(Instr::StoreMemByte { a: Ri::Reg(r(5)), b: Ri::Reg(r(4)) });
        a.instr(Instr::LoadMemByte { w: r(6), a: Ri::Reg(r(4)) });
        a.normal(Func::Add, r(7), Ri::Reg(r(7)), Ri::Reg(r(6)));
    }
    a.halt(r(8));
    let s = state_with_code(0x100, &a.assemble().unwrap());
    for lat in [0, 1, 3] {
        run_lockstep(&s, 1000, cfg_fixed(lat), 100_000).unwrap();
    }
}

#[test]
fn loops_and_branches() {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    // Compute 10! mod 2^32 with a loop.
    a.li(r(1), 1); // acc
    a.li(r(2), 10); // i
    a.label("loop");
    a.normal(Func::Mul, r(1), Ri::Reg(r(1)), Ri::Reg(r(2)));
    a.normal(Func::Dec, r(2), Ri::Imm(0), Ri::Reg(r(2)));
    a.branch_nonzero_sub(Ri::Reg(r(2)), Ri::Imm(0), "loop", r(60));
    a.halt(r(61));
    let s = state_with_code(0, &a.assemble().unwrap());
    let rep = run_lockstep(&s, 10_000, cfg_random(3), 1_000_000).unwrap();
    assert!(rep.instructions > 30);
}

#[test]
fn call_ret_and_computed_jumps() {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    a.call("f", r(60), r(62));
    a.call("f", r(60), r(62));
    a.halt(r(61));
    a.label("f");
    a.normal(Func::Add, r(1), Ri::Reg(r(1)), Ri::Imm(5));
    a.ret(r(62), r(59));
    let s = state_with_code(0, &a.assemble().unwrap());
    run_lockstep(&s, 1000, cfg_random(11), 100_000).unwrap();
}

#[test]
fn in_out_ports_and_accelerator() {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    a.instr(Instr::In { w: r(1) });
    a.instr(Instr::Out { func: Func::Add, w: r(2), a: Ri::Reg(r(1)), b: Ri::Imm(1) });
    a.instr(Instr::Accelerator { w: r(3), a: Ri::Reg(r(2)) });
    a.halt(r(4));
    let mut s = state_with_code(0, &a.assemble().unwrap());
    s.data_in = 0x7F;
    run_lockstep(&s, 100, cfg_fixed(0), 10_000).unwrap();
}

#[test]
fn interrupt_records_matching_io_events() {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    a.li(r(1), 0x3000);
    a.li(r(2), 0xCAFE);
    a.instr(Instr::StoreMem { a: Ri::Reg(r(2)), b: Ri::Reg(r(1)) });
    a.instr(Instr::Interrupt);
    a.li(r(2), 0xD00D);
    a.instr(Instr::StoreMem { a: Ri::Reg(r(2)), b: Ri::Reg(r(1)) });
    a.instr(Instr::Interrupt);
    a.halt(r(3));
    let mut s = state_with_code(0, &a.assemble().unwrap());
    s.io_window = (0x3000, 8);
    let rep = run_lockstep(&s, 100, cfg_random(5), 100_000).unwrap();
    assert_eq!(rep.instructions, 7);
}

#[test]
fn reserved_wedges_both_levels() {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    a.li(r(1), 7);
    a.instr(Instr::Reserved);
    a.li(r(1), 9); // must never execute
    let s = state_with_code(0, &a.assemble().unwrap());
    let rep = run_lockstep(&s, 100, cfg_fixed(0), 10_000).unwrap();
    assert_eq!(rep.instructions, 1, "only the li retires");
}

#[test]
fn flags_across_instruction_boundaries() {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    // 64-bit addition using carry chaining.
    a.li(r(1), 0xFFFF_FFFF);
    a.li(r(2), 1);
    a.normal(Func::Add, r(3), Ri::Reg(r(1)), Ri::Reg(r(2)));
    a.normal(Func::AddWithCarry, r(4), Ri::Imm(0), Ri::Imm(0));
    a.normal(Func::Carry, r(5), Ri::Imm(0), Ri::Imm(0));
    a.normal(Func::Overflow, r(6), Ri::Imm(0), Ri::Imm(0));
    a.halt(r(7));
    let s = state_with_code(0, &a.assemble().unwrap());
    run_lockstep(&s, 100, cfg_fixed(2), 10_000).unwrap();
}

#[test]
fn nonzero_initial_registers_and_pc() {
    let mut a = Assembler::new(0x4000);
    let r = Reg::new;
    a.normal(Func::Add, r(10), Ri::Reg(r(11)), Ri::Reg(r(12)));
    a.halt(r(1));
    let mut s = state_with_code(0x4000, &a.assemble().unwrap());
    for i in 0..64 {
        s.regs[i] = (i as u32).wrapping_mul(0x0101_0101);
    }
    s.carry = true;
    s.overflow = true;
    run_lockstep(&s, 10, cfg_fixed(0), 1_000).unwrap();
}

/// Builds a random structured program: nested counted loops around
/// random ALU/memory instructions — exercising the branch/jump paths the
/// straight-line generator cannot.
fn random_structured_program(seed: u64, blocks: u32) -> State {
    let mut rng = TestRng::seed_from_u64(seed);
    let mut a = Assembler::new(0);
    let r = Reg::new;
    for b in 0..blocks {
        let iters = rng.gen_range(1..6);
        let counter = r(50);
        a.li(counter, iters);
        a.label(format!("blk{b}"));
        for _ in 0..rng.gen_range(1..5) {
            let w = r(rng.gen_range(1..40));
            let x = Ri::Reg(r(rng.gen_range(1..40)));
            let y = if rng.gen_bool(0.5) {
                Ri::Imm(rng.gen_range(-32..32))
            } else {
                Ri::Reg(r(rng.gen_range(1..40)))
            };
            match rng.gen_range(0..6) {
                0 => a.normal(Func::from_bits(rng.gen_range(0..16)), w, x, y),
                1 => a.shift(Shift::from_bits(rng.gen_range(0..4)), w, x, y),
                2 => a.instr(Instr::StoreMem { a: x, b: y }),
                3 => a.instr(Instr::LoadMem { w, a: x }),
                4 => a.instr(Instr::StoreMemByte { a: x, b: y }),
                _ => a.instr(Instr::LoadMemByte { w, a: x }),
            }
        }
        a.normal(Func::Dec, counter, Ri::Imm(0), Ri::Reg(counter));
        a.branch_nonzero_sub(Ri::Reg(counter), Ri::Imm(0), format!("blk{b}"), r(60));
    }
    a.halt(r(61));
    let mut s = State::new();
    s.mem.write_bytes(0, &a.assemble().expect("assembles"));
    for i in 1..50 {
        s.regs[i] = rng.gen();
    }
    s
}

/// Random *structured* programs — loops, branches, memory traffic,
/// random initial registers — stay in lockstep under random latency.
/// The 24 seeds fan out across cores via `testkit::par`.
#[test]
fn random_structured_programs() {
    let mut seeder = TestRng::seed_from_u64(testkit::master_seed() ^ 0x57C0);
    let cases: Vec<(u64, u32)> =
        (0..24).map(|_| (seeder.next_u64(), seeder.gen_range(1u32..5))).collect();
    testkit::par::par_map(cases, |(seed, blocks)| {
        let s = random_structured_program(seed, blocks);
        run_lockstep(&s, 3000, cfg_random(seed ^ 0xABCD), 3_000_000)
            .unwrap_or_else(|e| panic!("seed {seed:#x}, {blocks} blocks: {e}"));
    });
}

fn arb_straightline(ctx: &mut Ctx) -> (Vec<u32>, u64) {
    (ctx.vec_of(1usize..40, |c| c.any::<u32>()), ctx.any::<u64>())
}

testkit::props! {
    #![cases = 24]

    /// Random straight-line programs (arbitrary instruction words with
    /// jumps excluded) agree between ISA and implementation under random
    /// memory latencies.
    fn random_straightline_programs(ctx) {
        let (words, seed) = arb_straightline(ctx);
        let mut s = State::new();
        s.io_window = (0x8000, 4);
        let mut addr = 0u32;
        for w in &words {
            // Remap jump-class opcodes to Normal to keep the program
            // straight-line; everything else (including Reserved and
            // Interrupt) stays.
            let instr = ag32::decode(*w);
            let keep = !matches!(
                instr,
                Instr::Jump { .. } | Instr::JumpIfZero { .. } | Instr::JumpIfNotZero { .. }
            );
            let w2 = if keep { *w } else { *w & !(0x1F << 25) };
            s.mem.write_word(addr, w2);
            addr += 4;
        }
        // Halt terminator.
        s.mem.write_word(addr, encode(Instr::Jump {
            func: Func::Add, w: Reg::new(0), a: Ri::Imm(0),
        }));
        let rep = run_lockstep(&s, words.len() as u64 + 1, cfg_random(seed), 2_000_000)
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(rep.cycles >= rep.instructions);
    }

    /// Random register/flag initial states on a fixed ALU program.
    fn random_initial_state(ctx) {
        let mut a = Assembler::new(0);
        let r = Reg::new;
        for f in [Func::Add, Func::AddWithCarry, Func::Sub, Func::MulHi, Func::Less] {
            a.normal(f, r(1), Ri::Reg(r(2)), Ri::Reg(r(3)));
        }
        a.halt(r(4));
        let mut s = state_with_code(0, &a.assemble().unwrap());
        for i in 0..64 {
            s.regs[i] = ctx.any::<u32>();
        }
        s.carry = ctx.any_bool();
        s.overflow = ctx.any_bool();
        let seed = ctx.any::<u64>();
        run_lockstep(&s, 100, cfg_random(seed), 100_000)
            .unwrap_or_else(|e| panic!("{e}"));
    }
}
