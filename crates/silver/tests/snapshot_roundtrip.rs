//! Crash-resume equivalence as a property: a run checkpointed at a
//! testkit-chosen retire count and resumed — under either engine, from
//! a checkpoint captured under either engine — is indistinguishable
//! from the uninterrupted run (final architectural state, retire count,
//! per-opcode stats, I/O-event trace). This is the paper's
//! layer-equivalence claim (theorem J) pushed through the serialised
//! snapshot format, so every case also exercises the wire encoding.
//!
//! Failures shrink to a minimal choice stream and print a one-line
//! `TESTKIT_CASE_SEED=… cargo test …` reproduction command.

use ag32::asm::Assembler;
use ag32::{Func, Instr, Reg, Ri, Shift, State};
use jet::Jet;
use silver::snapshot::{SnapEngine, Snapshot};
use testkit::prop::Ctx;

/// A random structured program: counted loops of ALU/shift work with
/// occasional memory stores, port I/O and interrupts, ending in a halt.
/// I/O ops matter here — they populate `io_events`, the part of the
/// observable state a lossy snapshot format would most plausibly drop.
fn arb_state(ctx: &mut Ctx) -> State {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    let blocks = ctx.gen_range(1u32..4);
    for b in 0..blocks {
        let counter = r(50 + b as u8);
        a.li(counter, ctx.gen_range(1u32..5));
        a.label(&format!("block{b}"));
        for _ in 0..ctx.gen_range(1u32..8) {
            let w = r(ctx.gen_range(1u8..40));
            let x = Ri::Reg(r(ctx.gen_range(1u8..40)));
            let y = if ctx.gen_bool(0.5) {
                Ri::Reg(r(ctx.gen_range(1u8..40)))
            } else {
                Ri::Imm(ctx.gen_range(-32i8..=31))
            };
            match ctx.choose(8) {
                0 => a.shift(Shift::from_bits(ctx.choose(4) as u32), w, x, y),
                1 => {
                    // Keep stores inside a fixed scratch page.
                    a.li(r(48), 0x2000 + 4 * ctx.gen_range(0u32..64));
                    a.instr(Instr::StoreMem { a: x, b: Ri::Reg(r(48)) });
                }
                2 => a.instr(Instr::Out { func: Func::Snd, w, a: x, b: y }),
                3 => a.instr(Instr::In { w }),
                4 => a.instr(Instr::Interrupt),
                _ => a.normal(Func::from_bits(ctx.choose(16) as u32), w, x, y),
            }
        }
        a.normal(Func::Dec, counter, Ri::Imm(0), Ri::Reg(counter));
        a.branch_nonzero_sub(Ri::Reg(counter), Ri::Imm(0), &format!("block{b}"), r(60));
    }
    a.halt(r(61));
    let mut s = State::new();
    s.mem.write_bytes(0, &a.assemble().expect("generated program assembles"));
    s.data_in = ctx.draw(u64::from(u32::MAX)) as u32;
    s.io_window = (0x2000, 16);
    s
}

testkit::props! {
    #![cases = 40]

    /// The full crash-resume matrix: checkpoint the run at retire `k`
    /// under ref and under jet, round-trip each checkpoint through the
    /// wire format, resume each on ref and on jet, and demand every
    /// path lands exactly where the uninterrupted run does.
    fn checkpointed_resume_equals_uninterrupted_run(ctx) {
        let state = arb_state(ctx);
        let fuel: u64 = ctx.gen_range(20u64..=1200);

        let mut base = state.clone();
        base.run(fuel);
        let total = base.instructions_retired;

        let k: u64 = ctx.gen_range(0..=total);
        let remaining = fuel - k;

        let mut pre = state.clone();
        pre.run(k);
        let ref_bytes = Snapshot::capture(&pre).to_bytes();
        let mut jet_pre = Jet::from_state(&state);
        jet_pre.run(k);
        let jet_bytes = Snapshot::capture_jet(&jet_pre).to_bytes();

        for (origin, bytes) in [("ref", &ref_bytes), ("jet", &jet_bytes)] {
            let snap = Snapshot::from_bytes(bytes)
                .unwrap_or_else(|e| panic!("{origin} checkpoint rejected: {e}"));
            assert_eq!(snap.retired(), k, "{origin} checkpoint retire count");

            let mut s = snap.restore();
            s.run(remaining);
            assert!(
                s.isa_visible_eq(&base),
                "{origin}->ref resume diverged (k={k}, fuel={fuel})"
            );
            assert_eq!(s.instructions_retired, total, "{origin}->ref retire count");
            assert_eq!(s.stats, base.stats, "{origin}->ref stats");

            let mut j = snap.restore_jet();
            j.run(remaining);
            assert!(
                j.to_state().isa_visible_eq(&base),
                "{origin}->jet resume diverged (k={k}, fuel={fuel})"
            );
            assert_eq!(j.instructions_retired, total, "{origin}->jet retire count");
            assert_eq!(j.stats, base.stats, "{origin}->jet stats");
        }
    }

    /// Byte stability: equal observable states serialise to identical
    /// bytes regardless of which engine captured them (modulo the
    /// provenance byte) and regardless of how often you re-encode.
    fn snapshot_bytes_are_engine_independent(ctx) {
        let state = arb_state(ctx);
        let fuel: u64 = ctx.gen_range(20u64..=800);

        let mut pre = state.clone();
        pre.run(fuel);
        let k = pre.instructions_retired;
        let mut jet_pre = Jet::from_state(&state);
        jet_pre.run(k);

        let ref_snap = Snapshot::capture(&pre);
        let jet_snap = Snapshot::capture_jet(&jet_pre);
        let ref_bytes = ref_snap.to_bytes();
        assert_eq!(ref_bytes, ref_snap.to_bytes(), "re-encode is deterministic");
        assert_eq!(
            ref_bytes,
            Snapshot { engine: SnapEngine::Ref, ..jet_snap }.to_bytes(),
            "ref and jet captures of the same run serialise identically (k={k})"
        );
    }
}
