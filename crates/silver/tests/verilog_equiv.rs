//! Theorem-(10) analog for the real CPU: the circuit-level Silver
//! implementation and its generated Verilog stay in lockstep under a lab
//! environment, and whole programs run to completion purely under the
//! Verilog semantics (theorem (7)'s `vstep m = Ok fin`).

use ag32::asm::Assembler;
use ag32::{Func, Reg, Ri, State};
use silver::env::{Latency, MemEnvConfig};
use silver::{check_cpu_verilog_equiv, run_verilog_program};

fn demo_state() -> State {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    a.li(r(1), 0);
    a.li(r(2), 5);
    a.label("loop");
    a.normal(Func::Add, r(1), Ri::Reg(r(1)), Ri::Reg(r(2)));
    a.normal(Func::Dec, r(2), Ri::Imm(0), Ri::Reg(r(2)));
    a.branch_nonzero_sub(Ri::Reg(r(2)), Ri::Imm(0), "loop", r(60));
    a.li(r(3), 0x3000);
    a.instr(ag32::Instr::StoreMem { a: Ri::Reg(r(1)), b: Ri::Reg(r(3)) });
    a.instr(ag32::Instr::Interrupt);
    a.halt(r(61));
    let mut s = State::new();
    s.mem.write_bytes(0, &a.assemble().unwrap());
    s.io_window = (0x3000, 4);
    s
}

#[test]
fn cpu_verilog_lockstep_under_random_latency() {
    let cfg = MemEnvConfig {
        mem_latency: Latency::Random { max: 2 },
        interrupt_latency: Latency::Fixed(1),
        seed: 77,
        ..MemEnvConfig::default()
    };
    // Every signal compared on every one of 600 cycles.
    check_cpu_verilog_equiv(&demo_state(), cfg, 600).unwrap();
}

#[test]
fn whole_program_runs_under_verilog_semantics() {
    let s = demo_state();
    let (fin, env, cycles) = run_verilog_program(&s, MemEnvConfig::default(), 100_000).unwrap();
    // The program computed 5+4+3+2+1 = 15, stored it and interrupted.
    assert_eq!(env.mem.read_word(0x3000), 15);
    assert_eq!(env.io_events.len(), 1);
    assert_eq!(env.io_events[0].window, vec![15, 0, 0, 0]);
    assert!(cycles > 0);
    // Cross-check against the ISA run (theorem (7) composition).
    let mut isa = s.clone();
    isa.run(10_000);
    assert!(isa.is_halted());
    assert_eq!(u64::from(isa.pc), fin.get("pc").unwrap().as_u64());
    assert_eq!(isa.io_events, env.io_events);
}

#[test]
fn verilog_text_for_cpu_is_emitted() {
    let module = rtl::generate(&silver::silver_cpu()).unwrap();
    let text = verilog::pretty::print_module(&module);
    // The artefact the paper feeds to Vivado: a single synthesisable
    // module with the documented interface.
    for needle in [
        "module silver_cpu(",
        "input logic clk",
        "input logic [31:0] mem_rdata",
        "output logic [31:0] mem_addr",
        "output logic interrupt_req",
        "always_ff @(posedge clk)",
        "endmodule",
    ] {
        assert!(text.contains(needle), "missing `{needle}`");
    }
}
