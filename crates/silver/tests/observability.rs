//! Observability is trustworthy: VCD dumps of a fixed RTL run are
//! byte-stable (golden file), and an injected implementation bug is
//! caught by the forensic lockstep runner with a report naming the
//! divergent retire, the differing register, and both retire tails.

use ag32::asm::Assembler;
use ag32::{Func, Reg, Ri, State};
use rtl::ast::{word, Circuit, RExpr, RStmt};
use silver::env::{Latency, MemEnvConfig};
use silver::trace::{run_lockstep_forensic, ForensicConfig, RtlVcd};
use silver::{run_rtl_program_observed, silver_cpu};

fn state_with_code(base: u32, code: &[u8]) -> State {
    let mut s = State::new();
    s.pc = base;
    s.mem.write_bytes(base, code);
    s
}

fn cfg_fixed(lat: u32) -> MemEnvConfig {
    MemEnvConfig { mem_latency: Latency::Fixed(lat), ..MemEnvConfig::default() }
}

/// A small fixed program: three ALU ops and a halt.
fn fixed_program() -> State {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    a.li(r(1), 0x1234);
    a.li(r(2), 0x0FF0);
    a.normal(Func::Add, r(3), Ri::Reg(r(1)), Ri::Reg(r(2)));
    a.normal(Func::Xor, r(4), Ri::Reg(r(3)), Ri::Reg(r(1)));
    a.halt(r(5));
    state_with_code(0, &a.assemble().unwrap())
}

/// The VCD dump of a fixed RTL run is byte-for-byte reproducible and
/// matches the checked-in golden file. The writer emits no timestamps
/// or tool versions, so the waveform is a function of the circuit and
/// the program alone. Regenerate with `SILVER_BLESS=1 cargo test -p
/// silver --test observability`.
#[test]
fn vcd_golden_fixed_rtl_run() {
    let s = fixed_program();
    let mut vcd =
        RtlVcd::new(Vec::new(), &silver_cpu(), "silver_cpu").expect("vcd header writes");
    run_rtl_program_observed(&s, cfg_fixed(0), 10_000, &mut vcd).expect("fixed run completes");
    let bytes = vcd.finish().expect("vcd flushes");
    let text = String::from_utf8(bytes).expect("vcd is ascii");

    // Structural sanity regardless of the golden file.
    for marker in ["$timescale", "$scope module silver_cpu $end", "$var wire 32", "$dumpvars"] {
        assert!(text.contains(marker), "missing {marker:?} in VCD output");
    }

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/rtl_fixed.vcd");
    if std::env::var("SILVER_BLESS").as_deref() == Ok("1") {
        std::fs::write(golden_path, &text).expect("bless golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing; run with SILVER_BLESS=1 to create it");
    assert_eq!(text, golden, "VCD dump of the fixed run changed; re-bless if intentional");
}

/// A second run of the same program produces the identical dump —
/// the writer holds no hidden state.
#[test]
fn vcd_dump_is_deterministic() {
    let s = fixed_program();
    let mut out = Vec::new();
    for _ in 0..2 {
        let mut vcd =
            RtlVcd::new(Vec::new(), &silver_cpu(), "silver_cpu").expect("vcd header writes");
        run_rtl_program_observed(&s, cfg_fixed(0), 10_000, &mut vcd).expect("run completes");
        out.push(vcd.finish().expect("vcd flushes"));
    }
    assert_eq!(out[0], out[1]);
}

/// Rewrites every register-file write in the circuit to store
/// `value ^ 1` — a single-bit implementation bug of exactly the kind
/// theorem (9) rules out.
fn sabotage_reg_writes(stmts: &mut Vec<RStmt>, flipped: &mut usize) {
    for s in stmts {
        match s {
            RStmt::SetMem(name, _idx, val) if name == "regs" => {
                let old = val.clone();
                *val = old.xor_(word(32, 1));
                *flipped += 1;
            }
            RStmt::If(_, t, e) => {
                sabotage_reg_writes(t, flipped);
                sabotage_reg_writes(e, flipped);
            }
            RStmt::Case(_, arms, default) => {
                for (_, body) in arms {
                    sabotage_reg_writes(body, flipped);
                }
                if let Some(d) = default {
                    sabotage_reg_writes(d, flipped);
                }
            }
            _ => {}
        }
    }
}

fn sabotaged_cpu() -> Circuit {
    let mut c = silver_cpu();
    let mut flipped = 0;
    for p in &mut c.processes {
        sabotage_reg_writes(&mut p.body, &mut flipped);
    }
    assert!(flipped > 0, "expected at least one register-file write to sabotage");
    c
}

/// The healthy circuit passes the forensic lockstep runner (forensics
/// never fire on agreement), so the report below is caused by the
/// injected bug alone.
#[test]
fn forensic_lockstep_passes_on_healthy_cpu() {
    let s = fixed_program();
    let rep = run_lockstep_forensic(
        &silver_cpu(),
        &s,
        100,
        cfg_fixed(0),
        100_000,
        &ForensicConfig::default(),
    )
    .expect("healthy CPU stays in lockstep");
    assert_eq!(rep.instructions, 4, "two li, add, xor (the halt self-jump does not retire)");
}

/// An injected t9 bug — one flipped bit in every RTL register write —
/// produces a forensics report naming the divergent retire and cycle,
/// the differing register with both values, the last retired
/// instructions on both sides (≤ the configured tail), and a VCD window
/// around the divergence.
#[test]
fn injected_t9_bug_yields_forensics() {
    let s = fixed_program();
    let fx = run_lockstep_forensic(
        &sabotaged_cpu(),
        &s,
        100,
        cfg_fixed(0),
        100_000,
        &ForensicConfig::default(),
    )
    .expect_err("sabotaged CPU must diverge");

    // The report names where it happened...
    assert_eq!(fx.kind, "t9 ISA\u{2194}RTL lockstep");
    assert_eq!(
        fx.divergent_step,
        Some(0),
        "the first retire (zero-based) writes a register: {}",
        fx.render()
    );
    assert!(fx.divergent_cycle.is_some(), "divergent cycle recorded: {}", fx.render());

    // ...which register differs, with both values: the first `li`
    // writes r1 = 0x1234, the sabotage stores 0x1235.
    let r1 = fx
        .deltas
        .iter()
        .find(|d| d.field == "r1")
        .unwrap_or_else(|| panic!("r1 delta present: {}", fx.render()));
    assert_eq!(r1.spec, "0x00001234");
    assert_eq!(r1.impl_, "0x00001235");

    // ...the last retired instructions on both sides, bounded by the
    // configured tail...
    assert!(!fx.spec_tail.is_empty() && fx.spec_tail.len() <= 32, "{}", fx.render());
    assert!(!fx.impl_tail.is_empty() && fx.impl_tail.len() <= 32, "{}", fx.render());
    assert!(
        fx.spec_tail.iter().any(|l| l.contains("LoadConstant")),
        "spec tail shows the li: {}",
        fx.render()
    );

    // ...and a waveform window around the divergent cycle.
    assert!(fx.vcd_window.contains("$dumpvars"), "VCD window rendered: {}", fx.render());

    // The human rendition carries all of the above.
    let text = fx.render();
    for needle in ["t9", "r1", "0x00001234", "0x00001235"] {
        assert!(text.contains(needle), "render mentions {needle:?}:\n{text}");
    }
}

/// The tail bound is honoured for longer programs: a loop retiring far
/// more than `tail` instructions keeps only the last `tail` on the spec
/// side.
#[test]
fn forensic_tails_are_bounded() {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    a.li(r(1), 0);
    a.li(r(2), 30);
    a.label("loop");
    a.normal(Func::Add, r(1), Ri::Reg(r(1)), Ri::Imm(1));
    a.normal(Func::Dec, r(2), Ri::Imm(0), Ri::Reg(r(2)));
    a.branch_nonzero_sub(Ri::Reg(r(2)), Ri::Imm(0), "loop", r(60));
    a.halt(r(61));
    let s = state_with_code(0, &a.assemble().unwrap());
    let fcfg = ForensicConfig { tail: 8, vcd_window: 4 };
    let fx = run_lockstep_forensic(&sabotaged_cpu(), &s, 1000, cfg_fixed(0), 1_000_000, &fcfg)
        .expect_err("sabotaged CPU must diverge");
    assert!(fx.spec_tail.len() <= 8, "spec tail capped: {}", fx.spec_tail.len());
    assert!(fx.impl_tail.len() <= 8, "impl tail capped: {}", fx.impl_tail.len());
}
