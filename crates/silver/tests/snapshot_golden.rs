//! Golden fixture pinning snapshot format v1: a fixed program,
//! checkpointed at a fixed retire count with a fixed filesystem model,
//! must serialise to the exact bytes checked in at
//! `tests/golden/format_v1.snap`. Any byte-level drift — field order,
//! padding, section layout, checksum — fails here before it can break
//! old checkpoints in the field. Re-bless deliberately (with a version
//! bump if the change is real) via
//! `SILVER_BLESS=1 cargo test -p silver --test snapshot_golden`.

use ag32::asm::Assembler;
use ag32::{Func, Instr, Reg, Ri, State};
use basis::FsState;
use silver::snapshot::{Snapshot, MAGIC, VERSION};

/// A fixed program exercising every section: memory stores (MEM),
/// port output and interrupts (IOEV), flag-setting ALU work (CPU).
fn fixed_state() -> State {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    a.li(r(1), 0x1234);
    a.li(r(2), 0x2000);
    a.instr(Instr::StoreMem { a: Ri::Reg(r(1)), b: Ri::Reg(r(2)) });
    a.normal(Func::Add, r(3), Ri::Reg(r(1)), Ri::Reg(r(1)));
    a.instr(Instr::Out { func: Func::Snd, w: r(3), a: Ri::Imm(0), b: Ri::Reg(r(3)) });
    a.instr(Instr::Interrupt);
    a.instr(Instr::In { w: r(4) });
    a.normal(Func::Xor, r(5), Ri::Reg(r(4)), Ri::Reg(r(3)));
    a.halt(r(6));
    let mut s = State::new();
    s.mem.write_bytes(0, &a.assemble().expect("fixed program assembles"));
    s.data_in = 0xBEEF;
    s.io_window = (0x2000, 8);
    s
}

fn fixed_snapshot() -> Snapshot {
    let mut s = fixed_state();
    // A mid-run retire count: the checkpoint is of an *interrupted*
    // run, which is the case the format exists for.
    s.run(6);
    assert!(!s.is_halted(), "checkpoint must be mid-run");
    let mut fs = FsState::stdin_only(&["golden"], b"golden stdin\n");
    fs.write(1, b"partial stdout").expect("fs write");
    Snapshot::capture(&s).with_fs(fs)
}

#[test]
fn format_v1_bytes_are_pinned() {
    let bytes = fixed_snapshot().to_bytes();

    // Structural sanity regardless of the golden file.
    assert_eq!(&bytes[..8], &MAGIC);
    assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), VERSION);
    assert_eq!(bytes, fixed_snapshot().to_bytes(), "encoding is deterministic");

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/format_v1.snap");
    if std::env::var("SILVER_BLESS").as_deref() == Ok("1") {
        std::fs::write(golden_path, &bytes).expect("bless golden");
        return;
    }
    let golden = std::fs::read(golden_path)
        .expect("golden file missing; run with SILVER_BLESS=1 to create it");
    assert_eq!(
        bytes, golden,
        "snapshot byte format changed; if intentional, bump VERSION and re-bless"
    );
}

#[test]
fn golden_bytes_still_load_and_resume() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/format_v1.snap");
    let Ok(golden) = std::fs::read(golden_path) else {
        return; // blessing run creates it first
    };
    let snap = Snapshot::from_bytes(&golden).expect("golden snapshot loads");
    assert_eq!(snap.retired(), 6);
    assert!(snap.fs.is_some(), "golden snapshot carries the FS section");

    // The resumed run finishes exactly like the uninterrupted one.
    let mut full = fixed_state();
    full.run(1_000);
    assert!(full.is_halted());
    let mut resumed = snap.restore();
    resumed.run(1_000 - snap.retired());
    assert!(resumed.isa_visible_eq(&full), "golden checkpoint resumes to the full run's state");
}
