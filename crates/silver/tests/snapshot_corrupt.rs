//! Corrupt-input hardening: truncated, bit-flipped, wrong-version,
//! wrong-magic and per-section-damaged snapshots must come back as
//! *typed* [`SnapshotError`]s, never panics. One test per format
//! section; damaged payloads are re-sealed with the public
//! [`checksum64`] so they reach the inner section decoders instead of
//! dying at the checksum gate.

use ag32::asm::Assembler;
use ag32::{Func, Instr, Reg, Ri, State};
use basis::FsState;
use silver::snapshot::{checksum64, Snapshot, SnapshotError};

/// A snapshot with every section present (including FS) and at least
/// two memory pages and one I/O event, so each corruption has a target.
fn full_snapshot_bytes() -> Vec<u8> {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    a.li(r(1), 0xAB);
    a.li(r(2), 0x2000);
    a.instr(Instr::StoreMem { a: Ri::Reg(r(1)), b: Ri::Reg(r(2)) });
    a.instr(Instr::Out { func: Func::Snd, w: r(1), a: Ri::Imm(0), b: Ri::Reg(r(1)) });
    a.instr(Instr::Interrupt);
    a.halt(r(3));
    let mut s = State::new();
    s.mem.write_bytes(0, &a.assemble().expect("assembles"));
    s.io_window = (0x2000, 8);
    s.run(100);
    assert!(s.is_halted());
    assert!(!s.io_events.is_empty(), "need an I/O event to corrupt");
    Snapshot::capture(&s)
        .with_fs(FsState::stdin_only(&["corrupt"], b"stdin"))
        .to_bytes()
}

/// Finds `(offset, len)` of the section tagged `tag` in the table.
fn section(bytes: &[u8], tag: &[u8; 4]) -> (usize, usize) {
    let count = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
    for i in 0..count {
        let e = &bytes[24 + i * 20..24 + (i + 1) * 20];
        if &e[..4] == tag {
            let off = u64::from_le_bytes(e[4..12].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(e[12..20].try_into().unwrap()) as usize;
            return (off, len);
        }
    }
    panic!("section {:?} not found", String::from_utf8_lossy(tag));
}

/// Recomputes the body checksum after a deliberate corruption, so the
/// damage reaches the decoder it targets.
fn reseal(bytes: &mut [u8]) {
    let sum = checksum64(&bytes[20..]);
    bytes[12..20].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn wrong_magic_is_rejected() {
    let mut bytes = full_snapshot_bytes();
    bytes[0] = b'X';
    assert!(matches!(Snapshot::from_bytes(&bytes), Err(SnapshotError::BadMagic)));
    // Short input with bad magic is still BadMagic, not a panic.
    assert!(matches!(Snapshot::from_bytes(b"NOTASNAP"), Err(SnapshotError::BadMagic)));
}

#[test]
fn wrong_version_is_rejected() {
    let mut bytes = full_snapshot_bytes();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(SnapshotError::BadVersion { found: 99 })
    ));
}

#[test]
fn every_truncation_is_an_error_not_a_panic() {
    let bytes = full_snapshot_bytes();
    for n in 0..bytes.len() {
        assert!(
            Snapshot::from_bytes(&bytes[..n]).is_err(),
            "truncation to {n} of {} bytes must fail",
            bytes.len()
        );
    }
}

#[test]
fn unsealed_bit_flips_hit_the_checksum() {
    let bytes = full_snapshot_bytes();
    for pos in 20..bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        assert!(
            matches!(Snapshot::from_bytes(&bad), Err(SnapshotError::Checksum { .. })),
            "flip at {pos} must fail the checksum"
        );
    }
}

#[test]
fn unknown_section_tag_is_rejected() {
    let mut bytes = full_snapshot_bytes();
    let count = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
    assert!(count >= 1);
    bytes[24..28].copy_from_slice(b"ZZZ ");
    reseal(&mut bytes);
    assert!(matches!(Snapshot::from_bytes(&bytes), Err(SnapshotError::Table { .. })));
}

#[test]
fn corrupt_cpu_section_is_typed() {
    let mut bytes = full_snapshot_bytes();
    let (off, _) = section(&bytes, b"CPU ");
    // Byte 20 of the payload is the flags byte; set undefined bits.
    bytes[off + 20] = 0xFC;
    reseal(&mut bytes);
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::Corrupt { section: "CPU", .. }) => {}
        other => panic!("expected Corrupt CPU, got {other:?}"),
    }
}

#[test]
fn corrupt_mem_section_is_typed() {
    let mut bytes = full_snapshot_bytes();
    let (off, _) = section(&bytes, b"MEM ");
    let count = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    assert!(count >= 2, "need two pages to break the ordering");
    // Make the second page id equal the first: not strictly ascending.
    let first = bytes[off + 4..off + 8].to_vec();
    let second_at = off + 4 + 4 + ag32::Memory::PAGE_SIZE;
    bytes[second_at..second_at + 4].copy_from_slice(&first);
    reseal(&mut bytes);
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::Corrupt { section: "MEM", .. }) => {}
        other => panic!("expected Corrupt MEM, got {other:?}"),
    }
}

#[test]
fn corrupt_ioev_section_is_typed() {
    let mut bytes = full_snapshot_bytes();
    let (off, _) = section(&bytes, b"IOEV");
    // First event's window length, inflated past the section's end.
    bytes[off + 8..off + 12].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal(&mut bytes);
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::Truncated { section: "IOEV" }) => {}
        other => panic!("expected Truncated IOEV, got {other:?}"),
    }
}

#[test]
fn corrupt_run_section_is_typed() {
    let mut bytes = full_snapshot_bytes();
    let (off, _) = section(&bytes, b"RUN ");
    bytes[off + 8] = 9; // engine byte: only 0 (ref) and 1 (jet) exist
    reseal(&mut bytes);
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::Corrupt { section: "RUN", .. }) => {}
        other => panic!("expected Corrupt RUN, got {other:?}"),
    }
}

#[test]
fn corrupt_stat_section_is_typed() {
    let mut bytes = full_snapshot_bytes();
    let (off, _) = section(&bytes, b"STAT");
    bytes[off..off + 4].copy_from_slice(&3u32.to_le_bytes());
    reseal(&mut bytes);
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::Corrupt { section: "STAT", .. }) => {}
        other => panic!("expected Corrupt STAT, got {other:?}"),
    }
}

#[test]
fn corrupt_fs_section_is_typed() {
    let mut bytes = full_snapshot_bytes();
    let (off, _) = section(&bytes, b"FS  ");
    // argc inflated far past the payload: the FS decoder must report
    // it as a typed FS corruption, not walk off the end.
    bytes[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal(&mut bytes);
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::Corrupt { section: "FS", .. }) => {}
        other => panic!("expected Corrupt FS, got {other:?}"),
    }
}

#[test]
fn missing_mandatory_section_is_typed() {
    // Rebuild the file from its own sections, with STAT dropped.
    let bytes = full_snapshot_bytes();
    let kept: [&[u8; 4]; 5] = [b"CPU ", b"MEM ", b"IOEV", b"RUN ", b"FS  "];
    let payloads: Vec<&[u8]> = kept
        .iter()
        .map(|tag| {
            let (off, len) = section(&bytes, tag);
            &bytes[off..off + len]
        })
        .collect();
    let mut out = bytes[..12].to_vec(); // magic + version
    out.extend_from_slice(&[0u8; 8]); // checksum, resealed below
    out.extend_from_slice(&(kept.len() as u32).to_le_bytes());
    let mut off = (24 + kept.len() * 20) as u64;
    for (tag, payload) in kept.iter().zip(&payloads) {
        out.extend_from_slice(*tag);
        out.extend_from_slice(&off.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        off += payload.len() as u64;
    }
    for payload in &payloads {
        out.extend_from_slice(payload);
    }
    reseal(&mut out);
    match Snapshot::from_bytes(&out) {
        Err(SnapshotError::MissingSection { tag: "STAT" }) => {}
        other => panic!("expected MissingSection STAT, got {other:?}"),
    }
}
