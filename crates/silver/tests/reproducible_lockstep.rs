//! Determinism smoke test: the whole lockstep pipeline — random program
//! generation, the circuit interpreter, and the randomised-latency
//! environment model — is a pure function of its seeds.
//!
//! Three random programs are generated from seeds derived from
//! `TESTKIT_SEED` (so the suite still covers fresh programs when the
//! master seed changes), each is run through `run_lockstep` twice with
//! identical configuration, and the two [`LockstepReport`]s must be
//! bit-identical. This is the reproducibility contract the hermetic
//! `testkit` harness promises: same `TESTKIT_SEED`, same outcome.

use ag32::asm::Assembler;
use ag32::{Func, Reg, Ri, Shift, State};
use silver::env::{Latency, MemEnvConfig};
use silver::lockstep::{run_lockstep, LockstepReport};
use testkit::rng::{Rng as _, TestRng};

/// A small random structured program: a few blocks of ALU/shift work
/// wrapped in counted loops, ending in a halt.
fn random_program(seed: u64) -> State {
    let mut rng = TestRng::seed_from_u64(seed);
    let mut a = Assembler::new(0);
    let r = Reg::new;
    let blocks = rng.gen_range(1u32..4);
    for b in 0..blocks {
        let counter = r(50 + b as u8);
        a.li(counter, rng.gen_range(1u32..5));
        a.label(&format!("block{b}"));
        for _ in 0..rng.gen_range(1u32..6) {
            let w = r(rng.gen_range(1u8..40));
            let x = Ri::Reg(r(rng.gen_range(1u8..40)));
            let y = if rng.gen_bool(0.5) {
                Ri::Reg(r(rng.gen_range(1u8..40)))
            } else {
                Ri::Imm(rng.gen_range(-32i8..=31))
            };
            if rng.gen_bool(0.25) {
                a.shift(Shift::from_bits(rng.next_u32() & 3), w, x, y);
            } else {
                a.normal(Func::from_bits(rng.next_u32() & 0xF), w, x, y);
            }
        }
        a.normal(Func::Dec, counter, Ri::Imm(0), Ri::Reg(counter));
        a.branch_nonzero_sub(Ri::Reg(counter), Ri::Imm(0), &format!("block{b}"), r(60));
    }
    a.halt(r(61));
    let code = a.assemble().unwrap();
    let mut s = State::new();
    s.mem.write_bytes(0, &code);
    s
}

fn run_once(s: &State, env_seed: u64) -> LockstepReport {
    let cfg = MemEnvConfig {
        mem_latency: Latency::Random { max: 3 },
        interrupt_latency: Latency::Random { max: 3 },
        start_delay: 2,
        seed: env_seed,
    };
    run_lockstep(s, 20_000, cfg, 2_000_000).unwrap()
}

#[test]
fn lockstep_reports_are_reproducible() {
    let master = testkit::master_seed();
    for lane in 0u64..3 {
        let prog_seed = master ^ (0x0DD5_EED0 + lane);
        // Same seed twice: program generation itself must be deterministic.
        let s1 = random_program(prog_seed);
        let s2 = random_program(prog_seed);
        assert!(
            s1.isa_visible_eq(&s2),
            "program generation diverged for seed {prog_seed:#x}"
        );

        let env_seed = master.rotate_left(17) ^ lane;
        let r1 = run_once(&s1, env_seed);
        let r2 = run_once(&s2, env_seed);
        assert_eq!(
            r1, r2,
            "lockstep reports diverged for prog_seed={prog_seed:#x} env_seed={env_seed:#x}"
        );
        assert!(r1.instructions > 0, "program retired no instructions");
        assert!(r1.cycles >= r1.instructions, "impl cannot be faster than one cycle/instr");
    }
}
