//! The "does nothing after termination" lemma (§4.3): the ISA-visible
//! state is unchanged at any *clock cycle* after program termination,
//! not just at any instruction cycle.

use ag32::asm::Assembler;
use ag32::{Reg, State};
use rtl::interp::RValue;
use silver::env::{Latency, MemEnvConfig};
use silver::lockstep::{env_from_isa, init_rtl_from_isa, rtl_is_halted};
use silver::silver_cpu;

#[test]
fn visible_state_is_constant_after_halt() {
    let mut a = Assembler::new(0);
    a.li(Reg::new(1), 42);
    a.halt(Reg::new(2));
    let mut s = State::new();
    s.mem.write_bytes(0, &a.assemble().unwrap());

    let circuit = silver_cpu();
    let cfg = MemEnvConfig {
        mem_latency: Latency::Random { max: 3 },
        seed: 9,
        ..MemEnvConfig::default()
    };
    let mut env = env_from_isa(&s, cfg);
    let mut st = init_rtl_from_isa(&circuit, &s);

    // Run until halted with at least one full lap of the self-jump
    // executed (so the idempotent link write has landed).
    let mut cycles = 0u64;
    let mut laps = 0;
    while laps < 2 {
        rtl::interp::step(&circuit, &mut env, &mut st, cycles).unwrap();
        cycles += 1;
        assert!(cycles < 10_000, "program should halt quickly");
        if rtl_is_halted(&st, &env).unwrap() && st.get_scalar("retired").unwrap() >= 3 {
            laps += 1;
        }
    }

    // Snapshot the ISA-visible projection and check it at EVERY
    // subsequent clock cycle — including mid-instruction wait states.
    let visible = |st: &rtl::RtlState| -> (u64, Vec<u64>, u64, u64, u64) {
        let regs = match st.get("regs").unwrap() {
            RValue::Mem { data, .. } => data.clone(),
            _ => unreachable!(),
        };
        (
            st.get_scalar("pc").unwrap(),
            regs,
            st.get_scalar("carry").unwrap(),
            st.get_scalar("overflow").unwrap(),
            st.get_scalar("data_out").unwrap(),
        )
    };
    let snap = visible(&st);
    let events = env.io_events.len();
    for extra in 0..200 {
        rtl::interp::step(&circuit, &mut env, &mut st, cycles + extra).unwrap();
        assert_eq!(visible(&st), snap, "visible state changed {extra} cycles after halt");
        assert_eq!(env.io_events.len(), events, "no new I/O events after halt");
    }
}

#[test]
fn wedged_machine_is_fully_frozen() {
    let mut s = State::new();
    s.mem.write_word(0, ag32::encode(ag32::Instr::Reserved));
    let circuit = silver_cpu();
    let mut env = env_from_isa(&s, MemEnvConfig::default());
    let mut st = init_rtl_from_isa(&circuit, &s);
    for c in 0..50 {
        rtl::interp::step(&circuit, &mut env, &mut st, c).unwrap();
    }
    assert_eq!(st.get_scalar("state").unwrap(), silver::cpu::fsm::WEDGED);
    let snap = st.clone();
    for c in 50..100 {
        rtl::interp::step(&circuit, &mut env, &mut st, c).unwrap();
        assert_eq!(st, snap, "wedged machine must not change at all");
    }
    assert!(rtl_is_halted(&st, &env).unwrap());
}

#[test]
fn snd_self_jump_idiom_also_quiesces() {
    // Halt via `Jump Snd r, Reg t` with R[t] = PC — the paper's
    // program-specific halt location.
    let mut s = State::new();
    s.regs[10] = 0x20;
    s.pc = 0x20;
    s.mem.write_word(
        0x20,
        ag32::encode(ag32::Instr::Jump {
            func: ag32::Func::Snd,
            w: ag32::Reg::new(11),
            a: ag32::Ri::Reg(ag32::Reg::new(10)),
        }),
    );
    assert!(s.is_halted());
    let circuit = silver_cpu();
    let mut env = env_from_isa(&s, MemEnvConfig::default());
    let mut st = init_rtl_from_isa(&circuit, &s);
    let mut cycles = 0;
    while st.get_scalar("retired").unwrap() < 1 {
        rtl::interp::step(&circuit, &mut env, &mut st, cycles).unwrap();
        cycles += 1;
    }
    assert!(rtl_is_halted(&st, &env).unwrap());
    assert_eq!(st.get_scalar("pc").unwrap(), 0x20);
}
