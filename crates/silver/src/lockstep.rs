//! The simulation relation between the Silver ISA and the Silver CPU —
//! the executable analogue of theorem (9), §4.3:
//!
//! > for any *n* instruction cycles the ISA can take, these steps can be
//! > simulated by running the implementation *m* clock cycles.
//!
//! [`run_lockstep`] runs the ISA `n` instructions, runs the circuit until
//! its retired-instruction counter reaches `n`, and then checks the
//! state-equality relation (`ag32_eq_hol_isa`): PC, all 64 registers,
//! both flags, the output port, the full memory, and the I/O-event
//! traces.

use std::fmt;

use ag32::State;
use rtl::interp::{self, RValue, RtlState};
use rtl::{Circuit, RtlError};

use crate::cpu::{fsm, silver_cpu};
use crate::env::{MemEnv, MemEnvConfig};

/// Successful lockstep outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockstepReport {
    /// Instructions the ISA retired.
    pub instructions: u64,
    /// Clock cycles the implementation needed (`m` of theorem (9)).
    pub cycles: u64,
}

/// Lockstep failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockstepError {
    /// The circuit simulator failed (never happens on the checked CPU).
    Rtl(RtlError),
    /// The implementation did not retire enough instructions in time.
    Timeout {
        /// Instructions the ISA retired.
        wanted: u64,
        /// Instructions the implementation managed.
        retired: u64,
        /// The cycle budget that was exhausted.
        max_cycles: u64,
    },
    /// A state component differs after retirement.
    Mismatch {
        /// Which component (e.g. `pc`, `r17`, `mem`, `io_events`).
        field: String,
        /// ISA-side value.
        isa: String,
        /// Implementation-side value.
        rtl: String,
    },
}

impl fmt::Display for LockstepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockstepError::Rtl(e) => write!(f, "circuit error: {e}"),
            LockstepError::Timeout { wanted, retired, max_cycles } => write!(
                f,
                "implementation retired {retired}/{wanted} instructions within {max_cycles} cycles"
            ),
            LockstepError::Mismatch { field, isa, rtl } => {
                write!(f, "`{field}` diverged: ISA {isa}, implementation {rtl}")
            }
        }
    }
}

impl std::error::Error for LockstepError {}

impl From<RtlError> for LockstepError {
    fn from(e: RtlError) -> Self {
        LockstepError::Rtl(e)
    }
}

/// Initialises the circuit state from an ISA state — the
/// `ag32_eq_init_hol_isa` relation: ISA-visible components equal,
/// implementation registers in their start-up values.
#[must_use]
pub fn init_rtl_from_isa(circuit: &Circuit, isa: &State) -> RtlState {
    let mut st = RtlState::zeroed(circuit);
    st.set("pc", RValue::Word(32, u64::from(isa.pc))).expect("pc");
    st.set(
        "regs",
        RValue::Mem { elem: 32, data: isa.regs.iter().map(|&r| u64::from(r)).collect() },
    )
    .expect("regs");
    st.set("carry", RValue::Bit(isa.carry)).expect("carry");
    st.set("overflow", RValue::Bit(isa.overflow)).expect("overflow");
    st.set("data_out", RValue::Word(32, u64::from(isa.data_out))).expect("data_out");
    st
}

/// Builds the lab environment for an ISA state's memory and I/O config.
#[must_use]
pub fn env_from_isa(isa: &State, cfg: MemEnvConfig) -> MemEnv {
    let mut env = MemEnv::new(isa.mem.clone(), cfg);
    env.io_window = isa.io_window;
    env.data_in = isa.data_in;
    env.io_events = isa.io_events.clone();
    env
}

/// Checks the `ag32_eq_hol_isa` relation between an ISA state and the
/// circuit + environment pair.
///
/// # Errors
///
/// The first differing component, as a [`LockstepError::Mismatch`].
pub fn check_eq_isa_rtl(
    isa: &State,
    rtl: &RtlState,
    env: &MemEnv,
) -> Result<(), LockstepError> {
    let scalar = |name: &str| -> Result<u64, LockstepError> {
        rtl.get_scalar(name).map_err(LockstepError::Rtl)
    };
    let mismatch = |field: &str, a: String, b: String| LockstepError::Mismatch {
        field: field.to_string(),
        isa: a,
        rtl: b,
    };
    if scalar("pc")? != u64::from(isa.pc) {
        return Err(mismatch("pc", format!("{:#x}", isa.pc), format!("{:#x}", scalar("pc")?)));
    }
    match rtl.get("regs").map_err(LockstepError::Rtl)? {
        RValue::Mem { data, .. } => {
            for (i, (&rv, &iv)) in data.iter().zip(isa.regs.iter()).enumerate() {
                if rv != u64::from(iv) {
                    return Err(mismatch(&format!("r{i}"), format!("{iv:#x}"), format!("{rv:#x}")));
                }
            }
        }
        other => {
            return Err(mismatch("regs", "register file".into(), other.to_string()));
        }
    }
    for (name, isa_v) in [("carry", isa.carry), ("overflow", isa.overflow)] {
        if scalar(name)? != u64::from(isa_v) {
            return Err(mismatch(name, isa_v.to_string(), scalar(name)?.to_string()));
        }
    }
    if scalar("data_out")? != u64::from(isa.data_out) {
        return Err(mismatch(
            "data_out",
            format!("{:#x}", isa.data_out),
            format!("{:#x}", scalar("data_out")?),
        ));
    }
    if env.mem != isa.mem {
        return Err(mismatch("mem", format!("{:?}", isa.mem), format!("{:?}", env.mem)));
    }
    if env.io_events != isa.io_events {
        return Err(mismatch(
            "io_events",
            format!("{} events", isa.io_events.len()),
            format!("{} events", env.io_events.len()),
        ));
    }
    Ok(())
}

/// Runs the ISA for up to `max_instructions` and the implementation until
/// it has retired the same count, then checks state equality.
///
/// The ISA-side accelerator is forced to the identity function, matching
/// the board implementation.
///
/// # Errors
///
/// Simulator failure, cycle-budget exhaustion, or state divergence.
pub fn run_lockstep(
    initial: &State,
    max_instructions: u64,
    cfg: MemEnvConfig,
    max_cycles: u64,
) -> Result<LockstepReport, LockstepError> {
    run_lockstep_in(&silver_cpu(), initial, max_instructions, cfg, max_cycles)
}

/// [`run_lockstep`] against an explicit circuit — the hook fault-
/// injection tests use to check that a sabotaged CPU *fails* lockstep
/// (and that the forensics in [`crate::trace`] localise the fault).
///
/// # Errors
///
/// Simulator failure, cycle-budget exhaustion, or state divergence.
pub fn run_lockstep_in(
    circuit: &Circuit,
    initial: &State,
    max_instructions: u64,
    cfg: MemEnvConfig,
    max_cycles: u64,
) -> Result<LockstepReport, LockstepError> {
    let mut isa = initial.clone();
    isa.accel = |x| x;
    let instructions = isa.run(max_instructions);

    let mut env = env_from_isa(initial, cfg);
    let mut rtl_state = init_rtl_from_isa(circuit, initial);
    let mut cycles = 0u64;
    while rtl_state.get_scalar("retired")? < instructions {
        if cycles >= max_cycles {
            return Err(LockstepError::Timeout {
                wanted: instructions,
                retired: rtl_state.get_scalar("retired")?,
                max_cycles,
            });
        }
        interp::step(circuit, &mut env, &mut rtl_state, cycles)?;
        cycles += 1;
    }
    check_eq_isa_rtl(&isa, &rtl_state, &env)?;
    Ok(LockstepReport { instructions, cycles })
}

/// Whether the implementation has reached a halted configuration: either
/// wedged on a `Reserved` instruction, or sitting in the self-jump idiom
/// (decoded against the environment's memory and the register file).
///
/// # Errors
///
/// Propagates circuit-state read failures.
pub fn rtl_is_halted(rtl: &RtlState, env: &MemEnv) -> Result<bool, LockstepError> {
    if rtl.get_scalar("state")? == fsm::WEDGED {
        return Ok(true);
    }
    let pc = rtl.get_scalar("pc")? as u32;
    let instr = ag32::decode(env.mem.read_word(pc & !3));
    let regs = match rtl.get("regs").map_err(LockstepError::Rtl)? {
        RValue::Mem { data, .. } => data.clone(),
        _ => return Ok(false),
    };
    let ri = |r: ag32::Ri| -> u32 {
        match r {
            ag32::Ri::Reg(reg) => regs[reg.index()] as u32,
            ag32::Ri::Imm(v) => v as i32 as u32,
        }
    };
    Ok(match instr {
        ag32::Instr::Jump { func: ag32::Func::Snd, a, .. } => ri(a) == pc,
        ag32::Instr::Jump { func: ag32::Func::Add, a, .. } => ri(a) == 0,
        ag32::Instr::Reserved => true,
        _ => false,
    })
}

/// Runs a program entirely at the implementation level until it halts,
/// returning the final circuit state, the environment (whose memory and
/// I/O events are the program's outputs) and the cycle count.
///
/// # Errors
///
/// Simulator failure or cycle-budget exhaustion.
pub fn run_rtl_program(
    initial: &State,
    cfg: MemEnvConfig,
    max_cycles: u64,
) -> Result<(RtlState, MemEnv, u64), LockstepError> {
    run_rtl_program_observed(initial, cfg, max_cycles, &mut interp::NoCycleObserver)
}

/// [`run_rtl_program`] with a [`CycleObserver`](interp::CycleObserver)
/// seeing every post-edge state — the hook `silverc --vcd`/`--profile`
/// use on the RTL backend.
///
/// # Errors
///
/// Simulator failure or cycle-budget exhaustion.
pub fn run_rtl_program_observed(
    initial: &State,
    cfg: MemEnvConfig,
    max_cycles: u64,
    obs: &mut impl interp::CycleObserver,
) -> Result<(RtlState, MemEnv, u64), LockstepError> {
    let circuit = silver_cpu();
    let mut env = env_from_isa(initial, cfg);
    let mut rtl_state = init_rtl_from_isa(&circuit, initial);
    let mut cycles = 0u64;
    let mut last_retired = 0;
    loop {
        if cycles >= max_cycles {
            return Err(LockstepError::Timeout {
                wanted: u64::MAX,
                retired: rtl_state.get_scalar("retired")?,
                max_cycles,
            });
        }
        interp::step_observed(&circuit, &mut env, &mut rtl_state, cycles, obs)?;
        cycles += 1;
        let retired = rtl_state.get_scalar("retired")?;
        if retired != last_retired {
            last_retired = retired;
            if rtl_is_halted(&rtl_state, &env)? {
                return Ok((rtl_state, env, cycles));
            }
        }
        if rtl_state.get_scalar("state")? == fsm::WEDGED {
            return Ok((rtl_state, env, cycles));
        }
    }
}
