//! Deterministic, versioned, byte-stable run checkpoints.
//!
//! A snapshot is the whole observable machine at a retire boundary —
//! architectural state, sparse memory, the I/O-event trace, the retire
//! count and per-opcode stats, and optionally the interpreter-level
//! filesystem model — serialised so that *a resumed run is
//! indistinguishable from an uninterrupted one*. That is the paper's
//! layer-equivalence claim restated over serialised state: a checkpoint
//! taken under the reference interpreter may be resumed under the jet
//! translation-cache engine and vice versa (theorem J survives a trip
//! through bytes), which `tests/snapshot_roundtrip.rs` and the `t-snap`
//! campaign target check continuously.
//!
//! # Format v1
//!
//! All integers are little-endian; there are no pointers, no
//! timestamps, and no host-dependent ordering (sparse-memory pages and
//! file names are written sorted).
//!
//! ```text
//! [0..8)    magic  b"SILVSNAP"
//! [8..12)   u32 format version (currently 1)
//! [12..20)  u64 FNV-1a checksum of every byte after this field
//! [20..24)  u32 section count
//! then      count × { tag: 4 ASCII bytes, u64 offset, u64 len }
//! then      the section payloads (offsets are absolute)
//! ```
//!
//! Sections, in canonical order:
//!
//! | tag    | payload |
//! |--------|---------|
//! | `CPU ` | pc, data_in, data_out, io_window base+len (u32 each), flags u8 (bit 0 carry, bit 1 overflow), 3 zero pad, 64 × u32 registers |
//! | `MEM ` | u32 page count, then per page (strictly ascending ids, all-zero pages omitted): u32 id + 4096 bytes |
//! | `IOEV` | u32 event count, then per event: u32 data_out, u32 window len + bytes |
//! | `RUN ` | u64 retire count, u8 engine (0 = ref, 1 = jet), 7 zero pad |
//! | `STAT` | u32 opcode count (= 16), then per opcode a u64 retire counter |
//! | `FS  ` | optional; `basis::snap::encode_fs` payload |
//!
//! Omitting all-zero pages is what makes capture deterministic: the
//! reference interpreter and the jet engine may materialise different
//! zero pages along the way (allocation history differs), but their
//! *semantic* memories agree, so both sides serialise to identical
//! bytes — asserted by the `t-snap` target on every case.
//!
//! The accelerator hook (`State::accel`, a bare `fn` pointer) is
//! deliberately *not* serialised: a pointer is meaningless across
//! processes. [`Snapshot::restore`] installs the identity accelerator
//! (the [`ag32::State::new`] default); programs using a custom
//! accelerator must re-install it after restore.

use std::path::Path;

use ag32::{ExecStats, IoEvent, Memory, Opcode, State};
use basis::FsState;
use jet::Jet;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"SILVSNAP";

/// Current format version. Bump deliberately; the golden-fixture test
/// `tests/snapshot_golden.rs` pins the byte format per version.
pub const VERSION: u32 = 1;

const TAG_CPU: [u8; 4] = *b"CPU ";
const TAG_MEM: [u8; 4] = *b"MEM ";
const TAG_IOEV: [u8; 4] = *b"IOEV";
const TAG_RUN: [u8; 4] = *b"RUN ";
const TAG_STAT: [u8; 4] = *b"STAT";
const TAG_FS: [u8; 4] = *b"FS  ";

/// Every way a snapshot can fail to load (or be written). Corrupt
/// input of any shape — truncated, bit-flipped, wrong magic, wrong
/// version, garbage sections — is a typed error, never a panic.
#[derive(Debug)]
pub enum SnapshotError {
    /// The first 8 bytes are not [`MAGIC`].
    BadMagic,
    /// The format version is not one this build reads.
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The checksum over the body does not match the header.
    Checksum {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum recomputed over the body.
        found: u64,
    },
    /// The input ends before the named part is complete.
    Truncated {
        /// Which part of the format ran out of bytes.
        section: &'static str,
    },
    /// The section table is malformed (bad bounds, duplicate or
    /// unknown tags, overlapping entries).
    Table {
        /// Human-readable description.
        detail: String,
    },
    /// A mandatory section is absent.
    MissingSection {
        /// Tag of the missing section.
        tag: &'static str,
    },
    /// A section payload fails validation.
    Corrupt {
        /// Which section.
        section: &'static str,
        /// Human-readable description.
        detail: String,
    },
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::BadVersion { found } => {
                write!(f, "unsupported snapshot format version {found} (this build reads {VERSION})")
            }
            SnapshotError::Checksum { expected, found } => write!(
                f,
                "snapshot checksum mismatch (header {expected:#018x}, body {found:#018x}) — file corrupted"
            ),
            SnapshotError::Truncated { section } => {
                write!(f, "snapshot truncated in {section}")
            }
            SnapshotError::Table { detail } => write!(f, "bad snapshot section table: {detail}"),
            SnapshotError::MissingSection { tag } => {
                write!(f, "snapshot is missing mandatory section {tag:?}")
            }
            SnapshotError::Corrupt { section, detail } => {
                write!(f, "corrupt snapshot section {section}: {detail}")
            }
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Which engine wrote the checkpoint. Informational: either engine can
/// resume either snapshot (that is the point), but triage wants to know
/// the provenance of a checkpoint it is replaying.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapEngine {
    /// The reference interpreter (`ag32::State::next`).
    Ref,
    /// The jet translation-cache engine.
    Jet,
}

impl SnapEngine {
    /// `"ref"` or `"jet"`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SnapEngine::Ref => "ref",
            SnapEngine::Jet => "jet",
        }
    }
}

/// A run checkpoint: everything needed to resume on either engine.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The captured machine state (reference-interpreter form; jet
    /// captures go through [`Jet::to_state`], which writes the resident
    /// mirror back into sparse memory first).
    pub state: State,
    /// Which engine the checkpoint was taken under.
    pub engine: SnapEngine,
    /// Interpreter-level filesystem model, for oracle-stepped runs.
    /// Machine-level runs (everything `silverc` executes) keep the
    /// external world inside memory + `io_events`, so this stays
    /// `None` there.
    pub fs: Option<FsState>,
}

/// FNV-1a over `bytes` — the snapshot body checksum. Public so the
/// corrupt-input tests can re-seal a deliberately damaged section and
/// reach the inner decoders.
#[must_use]
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn enc_cpu(s: &State) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + 4 * ag32::NUM_REGS);
    put_u32(&mut out, s.pc);
    put_u32(&mut out, s.data_in);
    put_u32(&mut out, s.data_out);
    put_u32(&mut out, s.io_window.0);
    put_u32(&mut out, s.io_window.1);
    out.push(u8::from(s.carry) | (u8::from(s.overflow) << 1));
    out.extend_from_slice(&[0u8; 3]);
    for r in s.regs {
        put_u32(&mut out, r);
    }
    out
}

fn enc_mem(mem: &Memory) -> Vec<u8> {
    let ids = mem.nonzero_resident_page_ids();
    let mut out = Vec::with_capacity(4 + ids.len() * (4 + Memory::PAGE_SIZE));
    put_u32(&mut out, ids.len() as u32);
    for id in ids {
        put_u32(&mut out, id);
        out.extend_from_slice(mem.page(id).expect("nonzero page is resident"));
    }
    out
}

fn enc_ioev(events: &[IoEvent]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, events.len() as u32);
    for ev in events {
        put_u32(&mut out, ev.data_out);
        put_u32(&mut out, ev.window.len() as u32);
        out.extend_from_slice(&ev.window);
    }
    out
}

fn enc_run(retired: u64, engine: SnapEngine) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    put_u64(&mut out, retired);
    out.push(match engine {
        SnapEngine::Ref => 0,
        SnapEngine::Jet => 1,
    });
    out.extend_from_slice(&[0u8; 7]);
    out
}

fn enc_stat(stats: &ExecStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 8 * Opcode::COUNT);
    put_u32(&mut out, Opcode::COUNT as u32);
    for &n in &stats.opcode_retired {
        put_u64(&mut out, n);
    }
    out
}

/// Bounds-checked little-endian cursor over one section's payload.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Rd { buf, pos: 0, section }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Truncated { section: self.section })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn pad_zero(&mut self, n: usize) -> Result<(), SnapshotError> {
        if self.take(n)?.iter().any(|&b| b != 0) {
            return Err(self.corrupt("nonzero padding"));
        }
        Ok(())
    }

    fn done(&self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::Corrupt {
                section: self.section,
                detail: format!("{} trailing bytes", self.buf.len() - self.pos),
            });
        }
        Ok(())
    }

    fn corrupt(&self, detail: impl Into<String>) -> SnapshotError {
        SnapshotError::Corrupt { section: self.section, detail: detail.into() }
    }
}

fn dec_cpu(buf: &[u8], s: &mut State) -> Result<(), SnapshotError> {
    let mut r = Rd::new(buf, "CPU");
    s.pc = r.u32()?;
    s.data_in = r.u32()?;
    s.data_out = r.u32()?;
    s.io_window = (r.u32()?, r.u32()?);
    let flags = r.u8()?;
    if flags & !0b11 != 0 {
        return Err(r.corrupt(format!("unknown flag bits {flags:#04x}")));
    }
    s.carry = flags & 1 != 0;
    s.overflow = flags & 2 != 0;
    r.pad_zero(3)?;
    for i in 0..ag32::NUM_REGS {
        s.regs[i] = r.u32()?;
    }
    r.done()
}

fn dec_mem(buf: &[u8], mem: &mut Memory) -> Result<(), SnapshotError> {
    let mut r = Rd::new(buf, "MEM");
    let count = r.u32()?;
    let max_page = (1u64 << 32) >> Memory::PAGE_SHIFT;
    let mut prev: Option<u32> = None;
    for _ in 0..count {
        let id = r.u32()?;
        if u64::from(id) >= max_page {
            return Err(r.corrupt(format!("page id {id:#x} beyond 4 GiB")));
        }
        if prev.is_some_and(|p| id <= p) {
            return Err(r.corrupt(format!("page ids not strictly ascending at {id:#x}")));
        }
        prev = Some(id);
        let bytes: &[u8; Memory::PAGE_SIZE] =
            r.take(Memory::PAGE_SIZE)?.try_into().expect("exact page");
        mem.write_page(id, bytes);
    }
    r.done()
}

fn dec_ioev(buf: &[u8]) -> Result<Vec<IoEvent>, SnapshotError> {
    let mut r = Rd::new(buf, "IOEV");
    let count = r.u32()?;
    let mut events = Vec::new();
    for _ in 0..count {
        let data_out = r.u32()?;
        let len = r.u32()? as usize;
        events.push(IoEvent { data_out, window: r.take(len)?.to_vec() });
    }
    r.done()?;
    Ok(events)
}

fn dec_run(buf: &[u8]) -> Result<(u64, SnapEngine), SnapshotError> {
    let mut r = Rd::new(buf, "RUN");
    let retired = r.u64()?;
    let engine = match r.u8()? {
        0 => SnapEngine::Ref,
        1 => SnapEngine::Jet,
        e => return Err(r.corrupt(format!("unknown engine byte {e:#04x}"))),
    };
    r.pad_zero(7)?;
    r.done()?;
    Ok((retired, engine))
}

fn dec_stat(buf: &[u8]) -> Result<ExecStats, SnapshotError> {
    let mut r = Rd::new(buf, "STAT");
    let count = r.u32()? as usize;
    if count != Opcode::COUNT {
        return Err(r.corrupt(format!("opcode count {count} (this build has {})", Opcode::COUNT)));
    }
    let mut stats = ExecStats::default();
    for slot in &mut stats.opcode_retired {
        *slot = r.u64()?;
    }
    r.done()?;
    Ok(stats)
}

impl Snapshot {
    /// Checkpoints the reference interpreter.
    #[must_use]
    pub fn capture(state: &State) -> Snapshot {
        Snapshot { state: state.clone(), engine: SnapEngine::Ref, fs: None }
    }

    /// Checkpoints the jet engine, via [`Jet::to_state`] (which writes
    /// the flat resident mirror back into sparse memory — so a jet
    /// capture of an equivalent run serialises to exactly the bytes a
    /// reference capture does).
    #[must_use]
    pub fn capture_jet(jet: &Jet) -> Snapshot {
        Snapshot { state: jet.to_state(), engine: SnapEngine::Jet, fs: None }
    }

    /// Attaches the interpreter-level filesystem model.
    #[must_use]
    pub fn with_fs(mut self, fs: FsState) -> Snapshot {
        self.fs = Some(fs);
        self
    }

    /// The retire count the checkpoint was taken at.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.state.instructions_retired
    }

    /// A fresh reference-interpreter state ready to resume. The
    /// accelerator hook is reset to the identity function (see the
    /// module docs — `fn` pointers do not serialise).
    #[must_use]
    pub fn restore(&self) -> State {
        let mut s = self.state.clone();
        s.accel = State::new().accel;
        s
    }

    /// A fresh jet engine ready to resume. The translation cache starts
    /// empty and rebuilds lazily — cache contents are an acceleration
    /// detail, not machine state, which is why cross-engine resume is
    /// sound.
    #[must_use]
    pub fn restore_jet(&self) -> Jet {
        Jet::from_state(&self.restore())
    }

    /// Serialises to format v1 bytes. Deterministic: equal observable
    /// states produce identical bytes, on any host, under either
    /// capturing engine.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut sections: Vec<([u8; 4], Vec<u8>)> = vec![
            (TAG_CPU, enc_cpu(&self.state)),
            (TAG_MEM, enc_mem(&self.state.mem)),
            (TAG_IOEV, enc_ioev(&self.state.io_events)),
            (TAG_RUN, enc_run(self.state.instructions_retired, self.engine)),
            (TAG_STAT, enc_stat(&self.state.stats)),
        ];
        if let Some(fs) = &self.fs {
            sections.push((TAG_FS, basis::snap::encode_fs(fs)));
        }

        let table_end = 24 + sections.len() * 20;
        let body: usize = sections.iter().map(|(_, p)| p.len()).sum();
        let mut out = Vec::with_capacity(table_end + body);
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        put_u64(&mut out, 0); // checksum, patched below
        put_u32(&mut out, sections.len() as u32);
        let mut off = table_end as u64;
        for (tag, payload) in &sections {
            out.extend_from_slice(tag);
            put_u64(&mut out, off);
            put_u64(&mut out, payload.len() as u64);
            off += payload.len() as u64;
        }
        for (_, payload) in &sections {
            out.extend_from_slice(payload);
        }
        let sum = checksum64(&out[20..]);
        out[12..20].copy_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses format v1 bytes.
    ///
    /// # Errors
    ///
    /// A [`SnapshotError`] naming exactly what is wrong — magic,
    /// version, checksum, table, or the first corrupt section.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        if bytes.len() < 24 {
            if bytes.len() >= 8 && bytes[..8] != MAGIC {
                return Err(SnapshotError::BadMagic);
            }
            return Err(SnapshotError::Truncated { section: "header" });
        }
        if bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(SnapshotError::BadVersion { found: version });
        }
        let expected = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let found = checksum64(&bytes[20..]);
        if expected != found {
            return Err(SnapshotError::Checksum { expected, found });
        }

        let count = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes")) as usize;
        let table_end = 24usize
            .checked_add(count.checked_mul(20).ok_or(SnapshotError::Table {
                detail: "section count overflows".to_string(),
            })?)
            .ok_or(SnapshotError::Table { detail: "section count overflows".to_string() })?;
        if table_end > bytes.len() {
            return Err(SnapshotError::Truncated { section: "section table" });
        }

        let mut seen: Vec<[u8; 4]> = Vec::new();
        let mut cpu = None;
        let mut mem = None;
        let mut ioev = None;
        let mut run = None;
        let mut stat = None;
        let mut fs = None;
        for i in 0..count {
            let entry = &bytes[24 + i * 20..24 + (i + 1) * 20];
            let tag: [u8; 4] = entry[..4].try_into().expect("4 bytes");
            let off = u64::from_le_bytes(entry[4..12].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(entry[12..20].try_into().expect("8 bytes"));
            let end = off.checked_add(len).filter(|&e| e <= bytes.len() as u64).ok_or_else(
                || SnapshotError::Table {
                    detail: format!(
                        "section {:?} [{off}, +{len}) exceeds file of {} bytes",
                        String::from_utf8_lossy(&tag),
                        bytes.len()
                    ),
                },
            )?;
            if off < table_end as u64 {
                return Err(SnapshotError::Table {
                    detail: format!(
                        "section {:?} overlaps the header",
                        String::from_utf8_lossy(&tag)
                    ),
                });
            }
            if seen.contains(&tag) {
                return Err(SnapshotError::Table {
                    detail: format!("duplicate section {:?}", String::from_utf8_lossy(&tag)),
                });
            }
            seen.push(tag);
            let payload = &bytes[off as usize..end as usize];
            match tag {
                TAG_CPU => cpu = Some(payload),
                TAG_MEM => mem = Some(payload),
                TAG_IOEV => ioev = Some(payload),
                TAG_RUN => run = Some(payload),
                TAG_STAT => stat = Some(payload),
                TAG_FS => fs = Some(payload),
                _ => {
                    return Err(SnapshotError::Table {
                        detail: format!("unknown section {:?}", String::from_utf8_lossy(&tag)),
                    })
                }
            }
        }

        let mut state = State::new();
        dec_cpu(cpu.ok_or(SnapshotError::MissingSection { tag: "CPU " })?, &mut state)?;
        dec_mem(mem.ok_or(SnapshotError::MissingSection { tag: "MEM " })?, &mut state.mem)?;
        state.io_events = dec_ioev(ioev.ok_or(SnapshotError::MissingSection { tag: "IOEV" })?)?;
        let (retired, engine) =
            dec_run(run.ok_or(SnapshotError::MissingSection { tag: "RUN " })?)?;
        state.instructions_retired = retired;
        state.stats = dec_stat(stat.ok_or(SnapshotError::MissingSection { tag: "STAT" })?)?;
        let fs = match fs {
            Some(payload) => Some(basis::snap::decode_fs(payload).map_err(|detail| {
                SnapshotError::Corrupt { section: "FS", detail }
            })?),
            None => None,
        };
        Ok(Snapshot { state, engine, fs })
    }

    /// Writes the snapshot to `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the write fails.
    pub fn write_to(&self, path: &Path) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Writes the snapshot via a `.tmp` sibling plus rename, so a crash
    /// mid-write never leaves a torn checkpoint where the previous good
    /// one was — the rolling-checkpoint write path.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the write or rename fails.
    pub fn write_rolling(&self, path: &Path) -> Result<(), SnapshotError> {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "checkpoint.snap".to_string());
        let tmp = path.with_file_name(format!("{name}.tmp"));
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when reading fails, otherwise whatever
    /// [`Snapshot::from_bytes`] reports.
    pub fn read_from(path: &Path) -> Result<Snapshot, SnapshotError> {
        Snapshot::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag32::asm::Assembler;
    use ag32::{Func, Reg, Ri};

    /// A program exercising memory, flags, I/O ports and interrupts.
    fn busy_state() -> State {
        let mut a = Assembler::new(0);
        let r = Reg::new;
        a.li(r(1), 0xDEAD);
        a.li(r(2), 0x2000);
        a.instr(ag32::Instr::StoreMem { a: Ri::Reg(r(1)), b: Ri::Reg(r(2)) });
        a.normal(Func::Add, r(3), Ri::Reg(r(1)), Ri::Reg(r(1)));
        a.instr(ag32::Instr::Out { func: Func::Snd, w: r(3), a: Ri::Imm(0), b: Ri::Reg(r(3)) });
        a.instr(ag32::Instr::Interrupt);
        a.instr(ag32::Instr::In { w: r(4) });
        a.halt(r(5));
        let mut s = State::new();
        s.mem.write_bytes(0, &a.assemble().expect("assembles"));
        s.data_in = 0x5511;
        s.io_window = (0x2000, 8);
        s.run(100);
        assert!(s.is_halted());
        assert!(!s.io_events.is_empty());
        s
    }

    #[test]
    fn roundtrip_is_lossless_and_deterministic() {
        let s = busy_state();
        let snap = Snapshot::capture(&s);
        let bytes = snap.to_bytes();
        assert_eq!(bytes, Snapshot::capture(&s).to_bytes(), "capture is deterministic");

        let back = Snapshot::from_bytes(&bytes).expect("decodes");
        assert_eq!(back.engine, SnapEngine::Ref);
        let restored = back.restore();
        assert!(restored.isa_visible_eq(&s));
        assert_eq!(restored.instructions_retired, s.instructions_retired);
        assert_eq!(restored.stats, s.stats);
        assert_eq!(back.to_bytes(), bytes, "re-encode is byte-identical");
    }

    #[test]
    fn jet_and_ref_captures_serialise_identically() {
        let mut boot = busy_state();
        // Rewind to a fresh image: rebuild the same program state.
        boot = Snapshot::capture(&boot).restore();
        let ref_bytes = Snapshot::capture(&boot).to_bytes();
        let jet_bytes = Snapshot::capture_jet(&Jet::from_state(&boot)).to_bytes();
        // Engine provenance differs (RUN section), everything else must
        // agree — compare after normalising the engine byte.
        let ref_snap = Snapshot::from_bytes(&ref_bytes).unwrap();
        let jet_snap = Snapshot::from_bytes(&jet_bytes).unwrap();
        assert_eq!(jet_snap.engine, SnapEngine::Jet);
        assert!(ref_snap.state.isa_visible_eq(&jet_snap.state));
        assert_eq!(
            Snapshot { engine: SnapEngine::Ref, ..jet_snap }.to_bytes(),
            ref_bytes,
            "identical states serialise to identical bytes"
        );
    }

    #[test]
    fn fs_section_roundtrips() {
        let mut fs = FsState::stdin_only(&["prog"], b"stdin bytes");
        fs.write(1, b"partial stdout").unwrap();
        let snap = Snapshot::capture(&busy_state()).with_fs(fs.clone());
        let back = Snapshot::from_bytes(&snap.to_bytes()).expect("decodes");
        assert_eq!(back.fs.as_ref(), Some(&fs));
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let bytes = Snapshot::capture(&busy_state()).to_bytes();
        // Flip one bit in a selection of positions across the file;
        // every flip must surface as a typed error (the checksum covers
        // the body; header flips hit magic/version/checksum checks).
        for pos in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[pos] ^= 1;
            Snapshot::from_bytes(&bad).expect_err("bit flip must be detected");
        }
    }

    #[test]
    fn restore_resets_accel_to_identity() {
        fn doubler(x: u32) -> u32 {
            x.wrapping_mul(2)
        }
        let mut s = busy_state();
        s.accel = doubler;
        let restored = Snapshot::capture(&s).restore();
        assert_eq!((restored.accel)(21), 21, "identity accelerator after restore");
    }
}
