//! Cross-layer observability for the Silver CPU: waveform dumping,
//! cycle sampling and divergence forensics.
//!
//! Three layers of machinery, all strictly opt-in (the plain runners in
//! [`crate::lockstep`]/[`crate::verilog_level`] never touch this
//! module):
//!
//! * **VCD dumping** — [`RtlVcd`]/[`VerilogVcd`] are cycle observers
//!   that stream every scalar signal of a circuit into an
//!   [`obs::VcdWriter`]; [`VcdWindow`] is the bounded in-memory variant
//!   that retains the last *N* cycles for forensic windows.
//! * **Forensic runners** — [`run_lockstep_forensic`] re-runs theorem
//!   (9)'s ISA↔RTL lockstep with per-retire state comparison and
//!   returns, on divergence, an [`obs::Forensics`] report naming the
//!   divergent retire index and clock cycle, every differing register,
//!   the last-N retired instructions on both sides and a VCD window
//!   around the divergence. [`check_cpu_verilog_equiv_forensic`] does
//!   the same for theorem (10)'s RTL↔Verilog equivalence.
//! * **Cycle sampling** — [`PcSampler`] feeds the `pc` signal of every
//!   clock cycle to an [`obs::CycleProfiler`], turning RTL/Verilog runs
//!   into true cycle-attribution profiles (memory wait states included).

use std::collections::VecDeque;
use std::io::{self, Write};

use ag32::trace::RetireRing;
use ag32::{NoCoverage, State, StepOutcome};
use obs::{CycleProfiler, Forensics, RegDelta, VcdWriter};
use rtl::ast::{Circuit, RTy};
use rtl::interp::{self, RtlState, RValue};
use verilog::eval::VarState;

use crate::cpu::silver_cpu;
use crate::env::MemEnvConfig;
use crate::lockstep::{check_eq_isa_rtl, env_from_isa, init_rtl_from_isa, LockstepReport};

/// The scalar (bit/word, non-memory) signals of a circuit, inputs first
/// then registers, in declaration order — the signal set dumped to VCD.
#[must_use]
pub fn scalar_signals(c: &Circuit) -> Vec<(String, u32)> {
    c.inputs
        .iter()
        .chain(&c.regs)
        .filter_map(|(name, ty)| match ty {
            RTy::Bit => Some((name.clone(), 1)),
            RTy::Word(w) => Some((name.clone(), *w as u32)),
            RTy::Mem { .. } => None,
        })
        .collect()
}

fn rtl_values(signals: &[(String, u32)], st: &RtlState) -> Vec<u64> {
    signals.iter().map(|(name, _)| st.get_scalar(name).unwrap_or(0)).collect()
}

fn verilog_values(signals: &[(String, u32)], st: &VarState) -> Vec<u64> {
    signals.iter().map(|(name, _)| st.get(name).map(verilog::Value::as_u64).unwrap_or(0)).collect()
}

/// A [`CycleObserver`](interp::CycleObserver) streaming every scalar
/// signal of a circuit to a [`VcdWriter`].
///
/// I/O errors are latched (the simulation is not interrupted) and
/// surfaced by [`RtlVcd::finish`].
#[derive(Debug)]
pub struct RtlVcd<W: Write> {
    signals: Vec<(String, u32)>,
    vcd: VcdWriter<W>,
    err: Option<io::Error>,
}

impl<W: Write> RtlVcd<W> {
    /// Declares `circuit`'s scalar signals and writes the VCD header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(sink: W, circuit: &Circuit, scope: &str) -> io::Result<Self> {
        let signals = scalar_signals(circuit);
        let mut vcd = VcdWriter::new(sink);
        for (name, width) in &signals {
            vcd.add_signal(name, *width);
        }
        vcd.begin(scope)?;
        Ok(RtlVcd { signals, vcd, err: None })
    }

    /// Flushes; returns the first latched I/O error, if any.
    ///
    /// # Errors
    ///
    /// The first error encountered while sampling or flushing.
    pub fn finish(self) -> io::Result<W> {
        if let Some(e) = self.err {
            return Err(e);
        }
        self.vcd.finish()
    }
}

impl<W: Write> interp::CycleObserver for RtlVcd<W> {
    fn on_cycle(&mut self, n: u64, state: &RtlState) {
        if self.err.is_some() {
            return;
        }
        let values = rtl_values(&self.signals, state);
        if let Err(e) = self.vcd.sample(n, &values) {
            self.err = Some(e);
        }
    }
}

/// The Verilog-level sibling of [`RtlVcd`]: a
/// [`CycleObserver`](verilog::eval::CycleObserver) sampling the same
/// signal set out of the Verilog variable state.
#[derive(Debug)]
pub struct VerilogVcd<W: Write> {
    signals: Vec<(String, u32)>,
    vcd: VcdWriter<W>,
    err: Option<io::Error>,
}

impl<W: Write> VerilogVcd<W> {
    /// Declares `circuit`'s scalar signals and writes the VCD header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(sink: W, circuit: &Circuit, scope: &str) -> io::Result<Self> {
        let signals = scalar_signals(circuit);
        let mut vcd = VcdWriter::new(sink);
        for (name, width) in &signals {
            vcd.add_signal(name, *width);
        }
        vcd.begin(scope)?;
        Ok(VerilogVcd { signals, vcd, err: None })
    }

    /// Flushes; returns the first latched I/O error, if any.
    ///
    /// # Errors
    ///
    /// The first error encountered while sampling or flushing.
    pub fn finish(self) -> io::Result<W> {
        if let Some(e) = self.err {
            return Err(e);
        }
        self.vcd.finish()
    }
}

impl<W: Write> verilog::eval::CycleObserver for VerilogVcd<W> {
    fn on_cycle(&mut self, c: u64, state: &VarState) {
        if self.err.is_some() {
            return;
        }
        let values = verilog_values(&self.signals, state);
        if let Err(e) = self.vcd.sample(c, &values) {
            self.err = Some(e);
        }
    }
}

/// A bounded in-memory waveform: the last `capacity` cycles of a
/// circuit's scalar signals, renderable as VCD text — the "VCD window
/// around the divergent cycle" of a forensics report.
#[derive(Clone, Debug)]
pub struct VcdWindow {
    signals: Vec<(String, u32)>,
    capacity: usize,
    samples: VecDeque<(u64, Vec<u64>)>,
}

impl VcdWindow {
    /// A window over `circuit`'s scalar signals keeping `capacity`
    /// cycles.
    #[must_use]
    pub fn new(circuit: &Circuit, capacity: usize) -> Self {
        VcdWindow { signals: scalar_signals(circuit), capacity, samples: VecDeque::new() }
    }

    /// Records one cycle's values (evicting the oldest beyond capacity).
    pub fn record(&mut self, cycle: u64, values: Vec<u64>) {
        if self.capacity == 0 {
            return;
        }
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back((cycle, values));
    }

    /// Renders the retained cycles as a complete standalone VCD text.
    #[must_use]
    pub fn render(&self, scope: &str) -> String {
        if self.samples.is_empty() {
            return String::new();
        }
        let mut vcd = VcdWriter::new(Vec::new());
        for (name, width) in &self.signals {
            vcd.add_signal(name, *width);
        }
        if vcd.begin(scope).is_err() {
            return String::new();
        }
        for (cycle, values) in &self.samples {
            if vcd.sample(*cycle, values).is_err() {
                return String::new();
            }
        }
        vcd.finish().map(|bytes| String::from_utf8_lossy(&bytes).into_owned()).unwrap_or_default()
    }
}

impl interp::CycleObserver for VcdWindow {
    fn on_cycle(&mut self, n: u64, state: &RtlState) {
        let values = rtl_values(&self.signals.clone(), state);
        self.record(n, values);
    }
}

/// A cycle observer feeding the `pc` signal of every clock cycle to an
/// [`obs::CycleProfiler`] — cycle-exact profile attribution on the
/// RTL/Verilog backends.
#[derive(Clone, Debug)]
pub struct PcSampler {
    /// The profiler accumulating per-symbol cycle counts.
    pub profiler: CycleProfiler,
}

impl PcSampler {
    /// A sampler over `profiler`.
    #[must_use]
    pub fn new(profiler: CycleProfiler) -> Self {
        PcSampler { profiler }
    }
}

impl interp::CycleObserver for PcSampler {
    fn on_cycle(&mut self, _n: u64, state: &RtlState) {
        self.profiler.record_pc(state.get_scalar("pc").unwrap_or(0) as u32);
    }
}

impl verilog::eval::CycleObserver for PcSampler {
    fn on_cycle(&mut self, _c: u64, state: &VarState) {
        let pc = state.get("pc").map(verilog::Value::as_u64).unwrap_or(0);
        self.profiler.record_pc(pc as u32);
    }
}

/// How much context a forensic run retains.
#[derive(Clone, Copy, Debug)]
pub struct ForensicConfig {
    /// Last-N retired instructions kept on each side.
    pub tail: usize,
    /// Cycles of waveform kept around the divergence.
    pub vcd_window: usize,
}

impl Default for ForensicConfig {
    fn default() -> Self {
        ForensicConfig { tail: 32, vcd_window: 16 }
    }
}

fn regs_of(rtl: &RtlState) -> Vec<u64> {
    match rtl.get("regs") {
        Ok(RValue::Mem { data, .. }) => data.clone(),
        _ => Vec::new(),
    }
}

/// Every architectural field that differs between the ISA state and the
/// circuit + environment pair, with both values.
#[must_use]
pub fn collect_deltas(isa: &State, rtl: &RtlState, env: &crate::env::MemEnv) -> Vec<RegDelta> {
    let mut deltas = Vec::new();
    let scalar = |name: &str| rtl.get_scalar(name).unwrap_or(0);
    if scalar("pc") != u64::from(isa.pc) {
        deltas.push(RegDelta {
            field: "pc".into(),
            spec: format!("{:#010x}", isa.pc),
            impl_: format!("{:#010x}", scalar("pc")),
        });
    }
    for (i, rv) in regs_of(rtl).iter().enumerate() {
        let iv = u64::from(isa.regs[i]);
        if *rv != iv {
            deltas.push(RegDelta {
                field: format!("r{i}"),
                spec: format!("{iv:#010x}"),
                impl_: format!("{rv:#010x}"),
            });
        }
    }
    for (name, isa_v) in [("carry", isa.carry), ("overflow", isa.overflow)] {
        if scalar(name) != u64::from(isa_v) {
            deltas.push(RegDelta {
                field: name.into(),
                spec: isa_v.to_string(),
                impl_: scalar(name).to_string(),
            });
        }
    }
    if scalar("data_out") != u64::from(isa.data_out) {
        deltas.push(RegDelta {
            field: "data_out".into(),
            spec: format!("{:#010x}", isa.data_out),
            impl_: format!("{:#010x}", scalar("data_out")),
        });
    }
    if env.mem != isa.mem {
        deltas.push(RegDelta {
            field: "mem".into(),
            spec: "<image>".into(),
            impl_: "<differs>".into(),
        });
    }
    if env.io_events != isa.io_events {
        deltas.push(RegDelta {
            field: "io_events".into(),
            spec: format!("{} events", isa.io_events.len()),
            impl_: format!("{} events", env.io_events.len()),
        });
    }
    deltas
}

fn push_capped(tail: &mut VecDeque<String>, cap: usize, line: String) {
    if cap == 0 {
        return;
    }
    if tail.len() == cap {
        tail.pop_front();
    }
    tail.push_back(line);
}

/// Describes one RTL retire for the impl-side tail: retire index, cycle,
/// PC edge and register-file changes since the previous retire.
fn describe_rtl_retire(
    idx: u64,
    cycle: u64,
    prev_pc: u64,
    prev_regs: &[u64],
    rtl: &RtlState,
) -> (String, u64, Vec<u64>) {
    let pc_now = rtl.get_scalar("pc").unwrap_or(0);
    let regs_now = regs_of(rtl);
    let mut line = format!("#{idx:<6} cyc {cycle:<6} pc {prev_pc:#010x} -> {pc_now:#010x}");
    for (i, (&old, &new)) in prev_regs.iter().zip(regs_now.iter()).enumerate() {
        if old != new {
            line.push_str(&format!(" r{i}={new:#010x}"));
        }
    }
    (line, pc_now, regs_now)
}

/// [`run_lockstep_in`](crate::lockstep::run_lockstep_in) with per-retire
/// state comparison and full forensics on divergence.
///
/// The ISA and the implementation advance one retired instruction at a
/// time; after every retire the `ag32_eq_hol_isa` relation is checked,
/// so a divergence is caught at the *first* retire it manifests, with:
///
/// * the divergent retire index and clock cycle,
/// * every differing architectural field (registers, flags, pc, ports,
///   memory, I/O events),
/// * the last-N retired instructions on both sides,
/// * a VCD waveform window covering the cycles leading into the
///   divergence.
///
/// # Errors
///
/// A boxed [`Forensics`] report for any divergence, timeout or
/// simulator error.
pub fn run_lockstep_forensic(
    circuit: &Circuit,
    initial: &State,
    max_instructions: u64,
    cfg: MemEnvConfig,
    max_cycles: u64,
    fcfg: &ForensicConfig,
) -> Result<LockstepReport, Box<Forensics>> {
    let mut isa = initial.clone();
    isa.accel = |x| x;
    let mut ring = RetireRing::new(fcfg.tail);
    let mut env = env_from_isa(initial, cfg);
    let mut rtl = init_rtl_from_isa(circuit, initial);
    let mut window = VcdWindow::new(circuit, fcfg.vcd_window);
    let mut impl_tail: VecDeque<String> = VecDeque::new();
    let mut prev_pc = rtl.get_scalar("pc").unwrap_or(0);
    let mut prev_regs = regs_of(&rtl);
    let mut cycles = 0u64;
    let mut instructions = 0u64;

    let base = |kind_note: Option<String>,
                ring: &RetireRing,
                impl_tail: &VecDeque<String>,
                window: &VcdWindow,
                step: Option<u64>,
                cycle: Option<u64>| {
        let mut fx = Forensics::new("t9 ISA↔RTL lockstep", "isa", "rtl");
        fx.divergent_step = step;
        fx.divergent_cycle = cycle;
        fx.spec_tail = ring.render();
        fx.impl_tail = impl_tail.iter().cloned().collect();
        fx.vcd_window = window.render("silver_cpu");
        if let Some(n) = kind_note {
            fx.notes.push(n);
        }
        fx
    };

    while instructions < max_instructions {
        if isa.is_halted() {
            break;
        }
        match isa.next_traced(&mut NoCoverage, &mut ring) {
            StepOutcome::Retired(_) => instructions += 1,
            StepOutcome::Wedged => break,
        }
        // Advance the implementation until it has retired as many.
        loop {
            let retired = rtl.get_scalar("retired").map_err(|e| {
                Box::new(base(
                    Some(format!("circuit error: {e}")),
                    &ring,
                    &impl_tail,
                    &window,
                    Some(instructions - 1),
                    Some(cycles),
                ))
            })?;
            if retired >= instructions {
                break;
            }
            if cycles >= max_cycles {
                let mut fx = base(
                    Some(format!(
                        "timeout: implementation retired {retired}/{instructions} \
                         instructions within {max_cycles} cycles"
                    )),
                    &ring,
                    &impl_tail,
                    &window,
                    Some(instructions - 1),
                    Some(cycles),
                );
                fx.deltas = collect_deltas(&isa, &rtl, &env);
                return Err(Box::new(fx));
            }
            interp::step_observed(circuit, &mut env, &mut rtl, cycles, &mut window).map_err(
                |e| {
                    Box::new(base(
                        Some(format!("circuit error: {e}")),
                        &ring,
                        &impl_tail,
                        &window,
                        Some(instructions - 1),
                        Some(cycles),
                    ))
                },
            )?;
            cycles += 1;
        }
        let (line, pc_now, regs_now) =
            describe_rtl_retire(instructions - 1, cycles, prev_pc, &prev_regs, &rtl);
        push_capped(&mut impl_tail, fcfg.tail, line);
        prev_pc = pc_now;
        prev_regs = regs_now;
        if check_eq_isa_rtl(&isa, &rtl, &env).is_err() {
            let mut fx =
                base(None, &ring, &impl_tail, &window, Some(instructions - 1), Some(cycles));
            fx.deltas = collect_deltas(&isa, &rtl, &env);
            return Err(Box::new(fx));
        }
    }
    Ok(LockstepReport { instructions, cycles })
}

/// [`check_cpu_verilog_equiv`](crate::verilog_level::check_cpu_verilog_equiv)
/// with forensics: on the first signal divergence, reports the divergent
/// cycle, the differing signal with both values, the recent `pc`/
/// `state`/`retired` history on both sides and a VCD window (sampled
/// from the circuit side) leading into the divergence.
///
/// # Errors
///
/// A boxed [`Forensics`] report for any divergence or simulator error.
pub fn check_cpu_verilog_equiv_forensic(
    initial: &State,
    cfg: MemEnvConfig,
    cycles: u64,
    fcfg: &ForensicConfig,
) -> Result<(), Box<Forensics>> {
    use rtl::interp::RtlEnv as _;
    let circuit = silver_cpu();
    let mut env = env_from_isa(initial, cfg.clone());
    let mut window = VcdWindow::new(&circuit, fcfg.vcd_window);
    let signals = scalar_signals(&circuit);
    let tail_cap = fcfg.tail;
    let mut rtl_tail: VecDeque<String> = VecDeque::new();
    let mut v_tail: VecDeque<String> = VecDeque::new();
    let result = rtl::check_equiv_observed(
        &circuit,
        move |cycle, st| env.drive(cycle, st),
        cycles,
        |cycle, rtl_st, v_st| {
            window.record(cycle, rtl_values(&signals, rtl_st));
            let line = |pc: u64, state: u64, retired: u64| {
                format!("cyc {cycle:<6} pc {pc:#010x} state {state} retired {retired}")
            };
            push_capped(
                &mut rtl_tail,
                tail_cap,
                line(
                    rtl_st.get_scalar("pc").unwrap_or(0),
                    rtl_st.get_scalar("state").unwrap_or(0),
                    rtl_st.get_scalar("retired").unwrap_or(0),
                ),
            );
            let v = |name: &str| v_st.get(name).map(verilog::Value::as_u64).unwrap_or(0);
            push_capped(&mut v_tail, tail_cap, line(v("pc"), v("state"), v("retired")));
        },
    );
    match result {
        Ok(()) => Ok(()),
        Err(e) => {
            let mut fx = Forensics::new("t10 RTL↔Verilog equivalence", "rtl", "verilog");
            if let rtl::EquivError::Mismatch { cycle, name, rtl, verilog } = &e {
                fx.divergent_cycle = Some(*cycle);
                fx.deltas.push(RegDelta {
                    field: name.clone(),
                    spec: rtl.clone(),
                    impl_: verilog.clone(),
                });
            } else {
                fx.notes.push(e.to_string());
            }
            // The closures were moved into `check_equiv_observed`; the
            // tails and window captured by reference would complicate the
            // borrow story, so re-run the observed check to regenerate
            // context. Forensic runs happen only on already-failing cases,
            // so the extra simulation is cheap and bounded.
            let mut env2 = env_from_isa(initial, cfg);
            let mut window2 = VcdWindow::new(&circuit, fcfg.vcd_window);
            let signals2 = scalar_signals(&circuit);
            let mut rtl_tail2: VecDeque<String> = VecDeque::new();
            let mut v_tail2: VecDeque<String> = VecDeque::new();
            let _ = rtl::check_equiv_observed(
                &circuit,
                move |cycle, st| env2.drive(cycle, st),
                cycles,
                |cycle, rtl_st, v_st| {
                    window2.record(cycle, rtl_values(&signals2, rtl_st));
                    let line = |pc: u64, state: u64, retired: u64| {
                        format!("cyc {cycle:<6} pc {pc:#010x} state {state} retired {retired}")
                    };
                    push_capped(
                        &mut rtl_tail2,
                        tail_cap,
                        line(
                            rtl_st.get_scalar("pc").unwrap_or(0),
                            rtl_st.get_scalar("state").unwrap_or(0),
                            rtl_st.get_scalar("retired").unwrap_or(0),
                        ),
                    );
                    let v = |name: &str| v_st.get(name).map(verilog::Value::as_u64).unwrap_or(0);
                    push_capped(&mut v_tail2, tail_cap, line(v("pc"), v("state"), v("retired")));
                    if Some(cycle) == fx.divergent_cycle {
                        fx.spec_tail = rtl_tail2.iter().cloned().collect();
                        fx.impl_tail = v_tail2.iter().cloned().collect();
                        fx.vcd_window = window2.render("silver_cpu");
                    }
                },
            );
            Err(Box::new(fx))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MemEnvConfig;
    use ag32::asm::Assembler;
    use ag32::{Func, Reg, Ri};

    fn count_to_ten() -> State {
        let mut a = Assembler::new(0);
        let r1 = Reg::new(1);
        a.li(r1, 0);
        a.label("loop");
        a.normal(Func::Add, r1, Ri::Reg(r1), Ri::Imm(1));
        a.li(Reg::new(2), 10);
        a.branch_nonzero_sub(Ri::Reg(r1), Ri::Reg(Reg::new(2)), "loop", Reg::new(60));
        a.halt(Reg::new(61));
        let code = a.assemble().unwrap();
        let mut s = State::new();
        s.mem.write_bytes(0, &code);
        s
    }

    #[test]
    fn forensic_lockstep_passes_on_healthy_cpu() {
        let s = count_to_ten();
        let report = run_lockstep_forensic(
            &silver_cpu(),
            &s,
            100,
            MemEnvConfig::default(),
            20_000,
            &ForensicConfig::default(),
        )
        .expect("healthy CPU must pass forensic lockstep");
        assert!(report.instructions > 10);
        assert!(report.cycles >= report.instructions);
    }

    #[test]
    fn scalar_signals_skip_memories() {
        let c = silver_cpu();
        let signals = scalar_signals(&c);
        assert!(signals.iter().any(|(n, w)| n == "pc" && *w == 32));
        assert!(signals.iter().all(|(n, _)| n != "regs"), "regs memory excluded");
        assert!(signals.iter().any(|(n, w)| n == "carry" && *w == 1));
    }

    #[test]
    fn vcd_window_renders_bounded_standalone_vcd() {
        let c = silver_cpu();
        let mut w = VcdWindow::new(&c, 4);
        let st = RtlState::zeroed(&c);
        for cycle in 0..10 {
            interp::CycleObserver::on_cycle(&mut w, cycle, &st);
        }
        let text = w.render("win");
        assert!(text.starts_with("$version"), "{text}");
        assert!(text.contains("#6"), "window starts at cycle 6: {text}");
        assert!(!text.contains("#5"), "older cycles evicted: {text}");
    }
}
