//! The laboratory environment model — `is_lab_env` of §4.2.
//!
//! The paper represents everything outside the processor as a function
//! `env` from timesteps to the state of the world, constrained by three
//! interface predicates: `is_mem` (the shared DRAM module),
//! `is_mem_start_interface` (memory has been pre-loaded) and
//! `is_interrupt_interface` (the ARM core handling text-output requests).
//! [`MemEnv`] implements all three against the circuit's port protocol,
//! with configurable — optionally randomised — response latencies, so the
//! lockstep tests exercise the wait states that distinguish the
//! implementation from the ISA.

use ag32::{IoEvent, Memory};
use rtl::interp::{RValue, RtlEnv, RtlState};
use testkit::rng::{Rng as _, TestRng};

/// Latency behaviour of an interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Latency {
    /// Respond after exactly `n` extra cycles (0 = next edge).
    Fixed(u32),
    /// Respond after a uniformly random number of extra cycles in
    /// `0..=max`.
    Random {
        /// Upper bound (inclusive).
        max: u32,
    },
}

impl Latency {
    fn draw(self, rng: &mut TestRng) -> u32 {
        match self {
            Latency::Fixed(n) => n,
            Latency::Random { max } => rng.gen_range(0..=max),
        }
    }
}

/// Configuration for [`MemEnv`].
#[derive(Clone, Debug)]
pub struct MemEnvConfig {
    /// Memory read/write response latency.
    pub mem_latency: Latency,
    /// Cycles before `mem_start_ready` rises.
    pub start_delay: u32,
    /// Interrupt acknowledgement latency.
    pub interrupt_latency: Latency,
    /// Seed for randomised latencies.
    pub seed: u64,
}

impl Default for MemEnvConfig {
    fn default() -> Self {
        MemEnvConfig {
            mem_latency: Latency::Fixed(0),
            start_delay: 1,
            interrupt_latency: Latency::Fixed(0),
            seed: 0,
        }
    }
}

/// The complete environment: pre-loaded memory, start interface,
/// interrupt handler, input port.
#[derive(Clone, Debug)]
pub struct MemEnv {
    /// The external memory (the shared DRAM module of the lab setup).
    pub mem: Memory,
    /// I/O events recorded by the interrupt handler — the board-side view
    /// of the ISA's `io_events` trace.
    pub io_events: Vec<IoEvent>,
    /// `(base, len)` window the interrupt handler snapshots, matching
    /// [`ag32::State::io_window`].
    pub io_window: (u32, u32),
    /// Value driven on the processor's input port.
    pub data_in: u32,
    cfg: MemEnvConfig,
    rng: TestRng,
    mem_countdown: Option<u32>,
    int_countdown: Option<u32>,
}

impl MemEnv {
    /// Builds an environment around a pre-loaded memory image.
    #[must_use]
    pub fn new(mem: Memory, cfg: MemEnvConfig) -> Self {
        let rng = TestRng::seed_from_u64(cfg.seed);
        MemEnv {
            mem,
            io_events: Vec::new(),
            io_window: (0, 0),
            data_in: 0,
            cfg,
            rng,
            mem_countdown: None,
            int_countdown: None,
        }
    }
}

impl RtlEnv for MemEnv {
    fn drive(&mut self, cycle: u64, state: &RtlState) -> Vec<(String, RValue)> {
        let out = |name: &str| state.get_scalar(name).unwrap_or(0);
        let mut mem_ready = false;
        let mut mem_rdata = 0u64;
        let mut interrupt_ack = false;

        // is_mem: serve the outstanding request after its drawn latency.
        if out("mem_valid") == 1 {
            let remaining = *self
                .mem_countdown
                .get_or_insert_with(|| self.cfg.mem_latency.draw(&mut self.rng));
            if remaining == 0 {
                let addr = (out("mem_addr") as u32) & !3;
                if out("mem_write") == 1 {
                    let wdata = (out("mem_wdata") as u32).to_le_bytes();
                    let strb = out("mem_wstrb") as u32;
                    for (i, b) in wdata.iter().enumerate() {
                        if strb >> i & 1 == 1 {
                            self.mem.write_byte(addr + i as u32, *b);
                        }
                    }
                } else {
                    mem_rdata = u64::from(self.mem.read_word(addr));
                }
                mem_ready = true;
                self.mem_countdown = None;
            } else {
                self.mem_countdown = Some(remaining - 1);
            }
        } else {
            self.mem_countdown = None;
        }

        // is_interrupt_interface: acknowledge and record the event.
        if out("interrupt_req") == 1 {
            let remaining = *self
                .int_countdown
                .get_or_insert_with(|| self.cfg.interrupt_latency.draw(&mut self.rng));
            if remaining == 0 {
                let (base, len) = self.io_window;
                self.io_events.push(IoEvent {
                    data_out: out("data_out") as u32,
                    window: self.mem.read_bytes(base, len),
                });
                interrupt_ack = true;
                self.int_countdown = None;
            } else {
                self.int_countdown = Some(remaining - 1);
            }
        } else {
            self.int_countdown = None;
        }

        vec![
            ("mem_rdata".into(), RValue::Word(32, mem_rdata)),
            ("mem_ready".into(), RValue::Bit(mem_ready)),
            (
                "mem_start_ready".into(),
                RValue::Bit(cycle >= u64::from(self.cfg.start_delay)),
            ),
            ("interrupt_ack".into(), RValue::Bit(interrupt_ack)),
            ("data_in".into(), RValue::Word(32, u64::from(self.data_in))),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtl::interp::RtlState;

    #[test]
    fn latency_draw_is_bounded() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(Latency::Random { max: 3 }.draw(&mut rng) <= 3);
        }
        assert_eq!(Latency::Fixed(2).draw(&mut rng), 2);
    }

    #[test]
    fn idle_environment_raises_start_after_delay() {
        let c = crate::cpu::silver_cpu();
        let st = RtlState::zeroed(&c);
        let mut env = MemEnv::new(Memory::new(), MemEnvConfig {
            start_delay: 3,
            ..MemEnvConfig::default()
        });
        let pick = |vs: &Vec<(String, RValue)>, k: &str| {
            vs.iter().find(|(n, _)| n == k).unwrap().1.clone()
        };
        let v0 = env.drive(0, &st);
        assert_eq!(pick(&v0, "mem_start_ready"), RValue::Bit(false));
        let v3 = env.drive(3, &st);
        assert_eq!(pick(&v3, "mem_start_ready"), RValue::Bit(true));
    }
}
