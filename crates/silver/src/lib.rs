//! # silver — the verified-by-testing Silver processor
//!
//! §4 of *Verified Compilation on a Verified Processor* (PLDI 2019)
//! introduces Silver, "a verified proof-of-concept processor" that is the
//! CakeML compiler's hardware target. This crate contains the layers 3–4
//! of the paper's Figure 1 for that processor:
//!
//! * [`cpu`] — the Silver CPU as a circuit in the [`rtl`] EDSL: an
//!   unpipelined, in-order implementation of the [`ag32`] ISA with
//!   memory/interrupt wait states and a single shared ALU and next-PC
//!   unit (the §4.2 de-duplication);
//! * [`env`] — the lab environment (`is_lab_env`): external memory with
//!   configurable latency, the memory-start interface and the interrupt
//!   handler, standing in for the PYNQ board's DRAM and ARM core;
//! * [`lockstep`] — the ISA↔implementation simulation relation of
//!   theorem (9), run as a differential test;
//! * [`verilog_level`] — the implementation↔Verilog correspondence of
//!   theorem (10) and whole-program Verilog-level runs (theorem (7)).
//!
//! # Example
//!
//! Assemble a program, run it on the ISA and on the CPU implementation
//! under a random-latency memory, and check the simulation relation:
//!
//! ```
//! use ag32::{asm::Assembler, Func, Reg, Ri, State};
//! use silver::env::{Latency, MemEnvConfig};
//! use silver::lockstep::run_lockstep;
//!
//! let mut a = Assembler::new(0);
//! a.li(Reg::new(1), 0x1234_5678);
//! a.normal(Func::Add, Reg::new(2), Ri::Reg(Reg::new(1)), Ri::Imm(1));
//! a.halt(Reg::new(3));
//! let mut s = State::new();
//! s.mem.write_bytes(0, &a.assemble()?);
//!
//! let cfg = MemEnvConfig { mem_latency: Latency::Random { max: 3 }, ..Default::default() };
//! let report = run_lockstep(&s, 100, cfg, 10_000)?;
//! assert_eq!(report.instructions, 3);
//! assert!(report.cycles > report.instructions, "wait states cost cycles");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cpu;
pub mod env;
pub mod lockstep;
pub mod snapshot;
pub mod trace;
pub mod verilog_level;

pub use cpu::silver_cpu;
pub use snapshot::{SnapEngine, Snapshot, SnapshotError};
pub use env::{Latency, MemEnv, MemEnvConfig};
pub use lockstep::{
    run_lockstep, run_lockstep_in, run_rtl_program, run_rtl_program_observed, LockstepError,
    LockstepReport,
};
pub use trace::{
    check_cpu_verilog_equiv_forensic, run_lockstep_forensic, ForensicConfig, PcSampler, RtlVcd,
    VcdWindow, VerilogVcd,
};
pub use verilog_level::{
    check_cpu_verilog_equiv, run_verilog_program, run_verilog_program_observed,
};
