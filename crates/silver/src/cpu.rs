//! The Silver CPU as a circuit (§4.2 "The Silver Implementation").
//!
//! The implementation is not pipelined and executes instructions
//! in-order; it follows the ISA closely, with two deliberate departures
//! described in the paper:
//!
//! * **wait states** — instead of updating an abstract memory map, the
//!   implementation talks to external memory over a request/response
//!   interface (`is_mem`) and therefore has states with no ISA
//!   counterpart: an instruction cycle takes multiple clock cycles;
//! * **de-duplication** — the ISA computes the next PC (and ALU results)
//!   separately inside every instruction's semantics; the hardware has a
//!   single shared ALU and a single next-PC path, selected by decode.
//!
//! # External interface
//!
//! Inputs: `mem_rdata`, `mem_ready`, `mem_start_ready`, `interrupt_ack`,
//! `data_in`. Outputs: `mem_addr`, `mem_wdata`, `mem_wstrb` (byte
//! strobes; a request with any strobe set is a write), `mem_valid`,
//! `mem_write`, `interrupt_req`, `data_out`.
//!
//! A memory request holds `mem_valid` high until the environment asserts
//! `mem_ready` for one cycle (delivering `mem_rdata` for reads,
//! acknowledging the byte-strobed write otherwise). The processor issues
//! its first fetch only after `mem_start_ready` has been observed high —
//! the paper's `is_mem_start_interface`, signalling that the memory image
//! has been pre-loaded. An `Interrupt` instruction raises
//! `interrupt_req` and stalls until `interrupt_ack` (§4.1.1: "notifies
//! external hardware and waits for a response").

use rtl::ast::*;

/// Control-FSM state encodings (register `state`, 3 bits wide).
pub mod fsm {
    /// Waiting for `mem_start_ready`.
    pub const BOOT: u64 = 0;
    /// Fetch outstanding; decode + execute on `mem_ready`.
    pub const FETCH: u64 = 1;
    /// Word-load outstanding.
    pub const LOADW: u64 = 2;
    /// Byte-load outstanding.
    pub const LOADB: u64 = 3;
    /// Store outstanding.
    pub const STORE: u64 = 4;
    /// Interrupt raised, waiting for acknowledgement.
    pub const INT: u64 = 5;
    /// A `Reserved` instruction wedged the machine.
    pub const WEDGED: u64 = 6;
}

fn st(s: u64) -> RExpr {
    word(3, s)
}

/// Converts a one-bit vector into a Bit via comparison.
fn bit_of(e: RExpr) -> RExpr {
    e.eq_(word(1, 1))
}

fn pc() -> RExpr {
    read("pc")
}

fn regs_at(idx: RExpr) -> RExpr {
    read_mem("regs", idx)
}

/// `advance(next_pc)`: commit the instruction — update the PC, issue the
/// next fetch, return to `FETCH`, and bump the retired counter (a debug
/// register used by the simulation relation, not ISA state).
fn advance(next_pc: RExpr) -> Vec<RStmt> {
    vec![
        set("pc", next_pc.clone()),
        set("mem_addr", next_pc),
        set("mem_valid", bit(true)),
        set("mem_write", bit(false)),
        set("state", st(fsm::FETCH)),
        set("retired", read("retired").add(word(32, 1))),
    ]
}

/// Wedge on a `Reserved` instruction: stop issuing requests forever.
fn wedge() -> Vec<RStmt> {
    vec![set("state", st(fsm::WEDGED)), set("mem_valid", bit(false))]
}

fn flag_writes() -> Vec<RStmt> {
    vec![set("carry", read("t_ncarry")), set("overflow", read("t_noverflow"))]
}

/// The shared-ALU computation: `t_alu`, `t_ncarry`, `t_noverflow` from
/// `t_alu_a`, `t_alu_b` and the current flags (§4.1.1 "ALU operations").
fn alu_stmts() -> Vec<RStmt> {
    let a = || read("t_alu_a");
    let b = || read("t_alu_b");
    let sign = |e: RExpr| e.slice(31, 31);
    let ov_add = |sum: &str| {
        bit_of(sign(a()).eq_(sign(b())).zext(1))
            .and_(sign(read(sum)).ne(sign(a())))
    };
    vec![
        let_("t_add33", a().zext(33).add(b().zext(33))),
        let_("t_addc33", a().zext(33).add(b().zext(33)).add(read("carry").zext(33))),
        let_("t_sub", a().sub(b())),
        let_("t_mul64", a().zext(64).mul(b().zext(64))),
        // Defaults: flags unchanged, result zero (every arm overwrites).
        let_("t_ncarry", read("carry")),
        let_("t_noverflow", read("overflow")),
        let_("t_alu", word(32, 0)),
        RStmt::Case(
            read("t_func"),
            vec![
                (vec![0], vec![
                    let_("t_alu", read("t_add33").slice(31, 0)),
                    let_("t_ncarry", bit_of(read("t_add33").slice(32, 32))),
                    let_("t_noverflow", ov_add("t_alu")),
                ]),
                (vec![1], vec![
                    let_("t_alu", read("t_addc33").slice(31, 0)),
                    let_("t_ncarry", bit_of(read("t_addc33").slice(32, 32))),
                    let_("t_noverflow", ov_add("t_alu")),
                ]),
                (vec![2], vec![
                    let_("t_alu", read("t_sub")),
                    let_("t_ncarry", a().lt(b()).not_()),
                    let_(
                        "t_noverflow",
                        sign(a()).ne(sign(b())).and_(sign(read("t_alu")).ne(sign(a()))),
                    ),
                ]),
                (vec![3], vec![let_("t_alu", read("carry").zext(32))]),
                (vec![4], vec![let_("t_alu", read("overflow").zext(32))]),
                (vec![5], vec![let_("t_alu", b().add(word(32, 1)))]),
                (vec![6], vec![let_("t_alu", b().sub(word(32, 1)))]),
                (vec![7], vec![let_("t_alu", read("t_mul64").slice(31, 0))]),
                (vec![8], vec![let_("t_alu", read("t_mul64").slice(63, 32))]),
                (vec![9], vec![let_("t_alu", a().and_(b()))]),
                (vec![10], vec![let_("t_alu", a().or_(b()))]),
                (vec![11], vec![let_("t_alu", a().xor_(b()))]),
                (vec![12], vec![let_("t_alu", a().eq_(b()).zext(32))]),
                (vec![13], vec![let_("t_alu", a().slt(b()).zext(32))]),
                (vec![14], vec![let_("t_alu", a().lt(b()).zext(32))]),
                (vec![15], vec![let_("t_alu", b())]),
            ],
            None,
        ),
    ]
}

/// The barrel shifter (§4.1.1 "Shifts and rotations"). Rotation is built
/// from two shifts and an or, since Verilog has no rotate operator.
fn shifter_stmts() -> Vec<RStmt> {
    let a = || read("t_aval");
    let amt = || read("t_amt");
    let kind = |k: u64| read("t_func").slice(1, 0).eq_(word(2, k));
    vec![
        let_("t_amt", read("t_bval").slice(4, 0).zext(32)),
        let_(
            "t_shift",
            kind(0).mux(
                a().shl(amt()),
                kind(1).mux(
                    a().shr(amt()),
                    kind(2).mux(
                        a().sra(amt()),
                        // ror: amt = 0 must not shift left by 32.
                        amt().eq_(word(32, 0)).mux(
                            a(),
                            a().shr(amt()).or_(a().shl(word(32, 32).sub(amt()))),
                        ),
                    ),
                ),
            ),
        ),
    ]
}

/// Decode of the general instruction form into field temporaries.
fn decode_stmts() -> Vec<RStmt> {
    let iw = || read("t_iw");
    let ri_value = |field: &'static str| {
        bit_of(read(field).slice(6, 6)).mux(
            read(field).slice(5, 0).sext(32),
            regs_at(read(field).slice(5, 0)),
        )
    };
    vec![
        let_("t_op", iw().slice(29, 25)),
        let_("t_func", iw().slice(24, 21)),
        let_("t_wf", iw().slice(20, 14)),
        let_("t_af", iw().slice(13, 7)),
        let_("t_bf", iw().slice(6, 0)),
        let_("t_widx", read("t_wf").slice(5, 0)),
        let_("t_aval", ri_value("t_af")),
        let_("t_bval", ri_value("t_bf")),
        let_("t_wval", ri_value("t_wf")),
        // Shared-ALU operand selection: Jump feeds (PC, a), everything
        // else feeds (a, b) — the §4.2 de-duplication.
        let_("t_is_jump", read("t_op").eq_(word(5, 9))),
        let_("t_alu_a", read("t_is_jump").mux(pc(), read("t_aval"))),
        let_("t_alu_b", read("t_is_jump").mux(read("t_aval"), read("t_bval"))),
    ]
}

/// Builds the execute dispatch (the body of `FETCH` upon `mem_ready`).
fn execute_stmts() -> Vec<RStmt> {
    let iw = || read("t_iw");
    let wb = || bit_of(read("t_wf").slice(6, 6)); // destination field malformed
    let widx = || read("t_widx");
    let pc4 = || read("t_pc4");
    let guarded = |body: Vec<RStmt>| vec![iff(wb(), wedge(), body)];

    let load_constant = {
        let mut v = vec![
            let_("t_lc_imm", iw().slice(22, 0).zext(32)),
            let_(
                "t_lc_val",
                bit_of(iw().slice(24, 24))
                    .mux(word(32, 0).sub(read("t_lc_imm")), read("t_lc_imm")),
            ),
            set_mem("regs", iw().slice(30, 25), read("t_lc_val")),
        ];
        v.extend(advance(pc4()));
        v
    };
    let load_upper_constant = {
        let mut v = vec![
            let_("t_luc_w", iw().slice(29, 24)),
            set_mem(
                "regs",
                read("t_luc_w"),
                concat(vec![iw().slice(8, 0), regs_at(read("t_luc_w")).slice(22, 0)]),
            ),
        ];
        v.extend(advance(pc4()));
        v
    };

    let normal = guarded({
        let mut v = vec![set_mem("regs", widx(), read("t_alu"))];
        v.extend(flag_writes());
        v.extend(advance(pc4()));
        v
    });
    let shift = guarded({
        let mut v = shifter_stmts();
        v.push(set_mem("regs", widx(), read("t_shift")));
        v.extend(advance(pc4()));
        v
    });
    let store_word = vec![
        set("mem_addr", read("t_bval")),
        set("mem_wdata", read("t_aval")),
        set("mem_wstrb", word(4, 0xF)),
        set("mem_valid", bit(true)),
        set("mem_write", bit(true)),
        set("state", st(fsm::STORE)),
    ];
    let store_byte = {
        let byte = || read("t_aval").slice(7, 0);
        vec![
            let_("t_lane", read("t_bval").slice(1, 0)),
            set("mem_addr", read("t_bval")),
            set("mem_wdata", concat(vec![byte(), byte(), byte(), byte()])),
            set("mem_wstrb", word(4, 1).shl(read("t_lane").zext(4))),
            set("mem_valid", bit(true)),
            set("mem_write", bit(true)),
            set("state", st(fsm::STORE)),
        ]
    };
    let load_word = guarded(vec![
        set("wreg_save", widx()),
        set("mem_addr", read("t_aval")),
        set("mem_valid", bit(true)),
        set("mem_write", bit(false)),
        set("state", st(fsm::LOADW)),
    ]);
    let load_byte = guarded(vec![
        set("wreg_save", widx()),
        set("lane_save", read("t_aval").slice(1, 0)),
        set("mem_addr", read("t_aval")),
        set("mem_valid", bit(true)),
        set("mem_write", bit(false)),
        set("state", st(fsm::LOADB)),
    ]);
    let in_port = guarded({
        let mut v = vec![set_mem("regs", widx(), read("data_in"))];
        v.extend(advance(pc4()));
        v
    });
    let out_port = guarded({
        let mut v = vec![
            set_mem("regs", widx(), read("t_alu")),
            set("data_out", read("t_alu")),
        ];
        v.extend(flag_writes());
        v.extend(advance(pc4()));
        v
    });
    // The board accelerator: the identity function in this implementation.
    let accelerator = guarded({
        let mut v = vec![set_mem("regs", widx(), read("t_aval"))];
        v.extend(advance(pc4()));
        v
    });
    let jump = guarded({
        let mut v = vec![set_mem("regs", widx(), pc4())];
        v.extend(flag_writes());
        v.extend(advance(read("t_alu")));
        v
    });
    let jump_if_zero = {
        let mut v: Vec<RStmt> = flag_writes();
        v.extend(advance(
            read("t_alu")
                .eq_(word(32, 0))
                .mux(pc().add(read("t_wval")), pc4()),
        ));
        v
    };
    let jump_if_not_zero = {
        let mut v: Vec<RStmt> = flag_writes();
        v.extend(advance(
            read("t_alu")
                .eq_(word(32, 0))
                .mux(pc4(), pc().add(read("t_wval"))),
        ));
        v
    };
    let interrupt = vec![
        set("interrupt_req", bit(true)),
        set("mem_valid", bit(false)),
        set("state", st(fsm::INT)),
    ];

    let general = {
        let mut v = decode_stmts();
        v.extend(alu_stmts());
        v.push(RStmt::Case(
            read("t_op"),
            vec![
                (vec![0], normal),
                (vec![1], shift),
                (vec![2], store_word),
                (vec![3], store_byte),
                (vec![4], load_word),
                (vec![5], load_byte),
                (vec![6], in_port),
                (vec![7], out_port),
                (vec![8], accelerator),
                (vec![9], jump),
                (vec![10], jump_if_zero),
                (vec![11], jump_if_not_zero),
                (vec![12], interrupt),
            ],
            Some(wedge()),
        ));
        v
    };

    vec![
        let_("t_iw", read("mem_rdata")),
        let_("t_pc4", pc().add(word(32, 4))),
        iff(
            bit_of(iw().slice(31, 31)),
            load_constant,
            vec![iff(bit_of(iw().slice(30, 30)), load_upper_constant, general)],
        ),
    ]
}

/// Constructs the Silver CPU circuit — the analogue of `silver_cpu`,
/// the "HOL hardware description of the processor, in the form of a
/// next-state function expressed such that it is accepted as input by
/// our Verilog code generator" (§4.3).
#[must_use]
pub fn silver_cpu() -> Circuit {
    let mut b = CircuitBuilder::new("silver_cpu");
    // External interface (driven by `is_lab_env`).
    b.input("mem_rdata", RTy::Word(32));
    b.input("mem_ready", RTy::Bit);
    b.input("mem_start_ready", RTy::Bit);
    b.input("interrupt_ack", RTy::Bit);
    b.input("data_in", RTy::Word(32));
    // Architectural state.
    b.reg("pc", RTy::Word(32));
    b.mem("regs", 32, 64);
    b.reg("carry", RTy::Bit);
    b.reg("overflow", RTy::Bit);
    b.reg("data_out", RTy::Word(32));
    // Microarchitectural state.
    b.reg("state", RTy::Word(3));
    b.reg("retired", RTy::Word(32));
    b.reg("wreg_save", RTy::Word(6));
    b.reg("lane_save", RTy::Word(2));
    // Bus registers.
    b.reg("mem_addr", RTy::Word(32));
    b.reg("mem_wdata", RTy::Word(32));
    b.reg("mem_wstrb", RTy::Word(4));
    b.reg("mem_valid", RTy::Bit);
    b.reg("mem_write", RTy::Bit);
    b.reg("interrupt_req", RTy::Bit);
    // Combinational intermediates (`Let` targets).
    for (name, w) in [
        ("t_iw", 32),
        ("t_pc4", 32),
        ("t_op", 5),
        ("t_func", 4),
        ("t_wf", 7),
        ("t_af", 7),
        ("t_bf", 7),
        ("t_widx", 6),
        ("t_aval", 32),
        ("t_bval", 32),
        ("t_wval", 32),
        ("t_alu_a", 32),
        ("t_alu_b", 32),
        ("t_add33", 33),
        ("t_addc33", 33),
        ("t_sub", 32),
        ("t_mul64", 64),
        ("t_alu", 32),
        ("t_amt", 32),
        ("t_shift", 32),
        ("t_lane", 2),
        ("t_lc_imm", 32),
        ("t_lc_val", 32),
        ("t_luc_w", 6),
    ] {
        b.reg(name, RTy::Word(w));
    }
    for name in ["t_is_jump", "t_ncarry", "t_noverflow"] {
        b.reg(name, RTy::Bit);
    }
    for out in
        ["mem_addr", "mem_wdata", "mem_wstrb", "mem_valid", "mem_write", "interrupt_req", "data_out"]
    {
        b.output(out);
    }

    let boot = vec![iff(
        read("mem_start_ready"),
        vec![
            set("mem_addr", pc()),
            set("mem_valid", bit(true)),
            set("mem_write", bit(false)),
            set("state", st(fsm::FETCH)),
        ],
        vec![],
    )];
    let fetch = vec![iff(read("mem_ready"), execute_stmts(), vec![])];
    let loadw = vec![iff(read("mem_ready"), {
        let mut v = vec![set_mem("regs", read("wreg_save"), read("mem_rdata"))];
        v.extend(advance(pc().add(word(32, 4))));
        v
    }, vec![])];
    let loadb = vec![iff(read("mem_ready"), {
        let mut v = vec![
            let_(
                "t_alu",
                read("mem_rdata")
                    .shr(read("lane_save").zext(32).shl(word(32, 3)))
                    .slice(7, 0)
                    .zext(32),
            ),
            set_mem("regs", read("wreg_save"), read("t_alu")),
        ];
        v.extend(advance(pc().add(word(32, 4))));
        v
    }, vec![])];
    let store = vec![iff(read("mem_ready"), advance(pc().add(word(32, 4))), vec![])];
    let int = vec![iff(read("interrupt_ack"), {
        let mut v = vec![set("interrupt_req", bit(false))];
        v.extend(advance(pc().add(word(32, 4))));
        v
    }, vec![])];

    b.process(vec![RStmt::Case(
        read("state"),
        vec![
            (vec![fsm::BOOT], boot),
            (vec![fsm::FETCH], fetch),
            (vec![fsm::LOADW], loadw),
            (vec![fsm::LOADB], loadb),
            (vec![fsm::STORE], store),
            (vec![fsm::INT], int),
            (vec![fsm::WEDGED], vec![]),
        ],
        None,
    )]);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_circuit_is_well_formed() {
        rtl::check(&silver_cpu()).expect("silver_cpu type-checks");
    }

    #[test]
    fn cpu_generates_verilog() {
        let m = rtl::generate(&silver_cpu()).expect("codegen succeeds");
        let text = verilog::pretty::print_module(&m);
        assert!(text.contains("module silver_cpu("));
        assert!(text.contains("output logic [31:0] mem_addr"));
        assert!(text.contains("logic [31:0] regs [0:63];"));
    }

    #[test]
    fn boot_waits_for_mem_start() {
        use rtl::interp::{FixedEnv, RValue, RtlState};
        let c = silver_cpu();
        let mut stt = RtlState::zeroed(&c);
        let mut env = FixedEnv(vec![
            ("mem_start_ready".into(), RValue::Bit(false)),
            ("mem_ready".into(), RValue::Bit(false)),
            ("mem_rdata".into(), RValue::Word(32, 0)),
            ("interrupt_ack".into(), RValue::Bit(false)),
            ("data_in".into(), RValue::Word(32, 0)),
        ]);
        rtl::interp::run(&c, &mut env, &mut stt, 10).unwrap();
        assert_eq!(stt.get_scalar("state").unwrap(), fsm::BOOT);
        assert_eq!(stt.get_scalar("mem_valid").unwrap(), 0);
        let mut env = FixedEnv(vec![
            ("mem_start_ready".into(), RValue::Bit(true)),
            ("mem_ready".into(), RValue::Bit(false)),
            ("mem_rdata".into(), RValue::Word(32, 0)),
            ("interrupt_ack".into(), RValue::Bit(false)),
            ("data_in".into(), RValue::Word(32, 0)),
        ]);
        rtl::interp::run(&c, &mut env, &mut stt, 1).unwrap();
        assert_eq!(stt.get_scalar("state").unwrap(), fsm::FETCH);
        assert_eq!(stt.get_scalar("mem_valid").unwrap(), 1, "fetch issued");
    }
}
