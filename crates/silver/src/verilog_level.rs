//! Verilog-level correctness of the Silver CPU — theorems (7) and (10).
//!
//! Theorem (10) relates the circuit-level CPU (`silver_cpu`) to its
//! generated Verilog (`silver_cpu_verilog`); composing it with the
//! ISA↔circuit simulation (theorem (9), [`crate::lockstep`]) yields the
//! ISA↔Verilog theorem (7). Here both compositions are executable:
//!
//! * [`check_cpu_verilog_equiv`] drives the circuit interpreter and the
//!   Verilog semantics in lockstep under a real lab environment and
//!   compares every signal each clock cycle (theorem 10);
//! * [`run_verilog_program`] runs a whole program purely under the
//!   Verilog semantics (theorem 7's `vstep m = Ok fin` runs), returning
//!   the final variable state and the environment.

use ag32::State;
use rtl::equiv::{check_equiv, EquivError};
use rtl::interp::RtlEnv;
use verilog::eval::VarState;

use crate::cpu::silver_cpu;
use crate::env::{MemEnv, MemEnvConfig};
use crate::lockstep::{env_from_isa, init_rtl_from_isa, LockstepError};

/// Checks `cycles` cycles of circuit↔Verilog lockstep agreement for the
/// Silver CPU under a lab environment built from `initial`'s memory.
///
/// # Errors
///
/// The first signal divergence or simulator error.
pub fn check_cpu_verilog_equiv(
    initial: &State,
    cfg: MemEnvConfig,
    cycles: u64,
) -> Result<(), EquivError> {
    let circuit = silver_cpu();
    let mut env = env_from_isa(initial, cfg);
    // `check_equiv` starts both sides from the all-zero state; pc and
    // registers start at zero, so `initial` must be based at pc 0 for
    // this check (the tests arrange that). The environment still serves
    // the real memory image.
    check_equiv(&circuit, move |cycle, st| env.drive(cycle, st), cycles)
}

/// Runs a program under the Verilog semantics until the mirrored circuit
/// interpreter (used only to drive the shared environment and detect
/// halt) reports halting; asserts signal agreement throughout.
///
/// Returns `(final_verilog_state, env, cycles)`.
///
/// # Errors
///
/// Divergence, simulator failure, or cycle-budget exhaustion.
pub fn run_verilog_program(
    initial: &State,
    cfg: MemEnvConfig,
    max_cycles: u64,
) -> Result<(VarState, MemEnv, u64), LockstepError> {
    run_verilog_program_observed(initial, cfg, max_cycles, &mut verilog::eval::NoCycleObserver)
}

/// [`run_verilog_program`] with a
/// [`CycleObserver`](verilog::eval::CycleObserver) seeing every
/// post-edge Verilog variable state — the hook `silverc --vcd`/
/// `--profile` use on the Verilog backend.
///
/// # Errors
///
/// Divergence, simulator failure, or cycle-budget exhaustion.
pub fn run_verilog_program_observed(
    initial: &State,
    cfg: MemEnvConfig,
    max_cycles: u64,
    obs: &mut impl verilog::eval::CycleObserver,
) -> Result<(VarState, MemEnv, u64), LockstepError> {
    let circuit = silver_cpu();
    let module = rtl::generate(&circuit).map_err(LockstepError::Rtl)?;
    let mut env = env_from_isa(initial, cfg);
    let mut rtl_state = init_rtl_from_isa(&circuit, initial);
    let mut v_state = module.initial_state().map_err(|e| LockstepError::Mismatch {
        field: "init".into(),
        isa: String::new(),
        rtl: e.to_string(),
    })?;
    // Mirror the initial (non-zero) circuit state into the Verilog state.
    for (name, value) in rtl_state.iter() {
        match rtl::equiv::to_verilog_value(value) {
            verilog::ast::ValueOrArray::Value(v) => {
                v_state.set(name, v).map_err(verr)?;
            }
            verilog::ast::ValueOrArray::Unpacked(elems) => {
                for (i, e) in elems.into_iter().enumerate() {
                    v_state.set_index(name, i as u64, e).map_err(verr)?;
                }
            }
        }
    }
    let mut cycles = 0u64;
    let mut last_retired = 0u64;
    loop {
        if cycles >= max_cycles {
            return Err(LockstepError::Timeout {
                wanted: u64::MAX,
                retired: rtl_state.get_scalar("retired")?,
                max_cycles,
            });
        }
        let driven = env.drive(cycles, &rtl_state);
        for (name, value) in &driven {
            rtl_state.set(name, value.clone())?;
            if let verilog::ast::ValueOrArray::Value(v) = rtl::equiv::to_verilog_value(value) {
                v_state.set(name, v).map_err(verr)?;
            }
        }
        rtl::interp::cycle(&circuit, &mut rtl_state)?;
        verilog::eval::cycle(&module, &mut v_state).map_err(verr)?;
        obs.on_cycle(cycles, &v_state);
        cycles += 1;
        // Spot-check agreement on the architectural interface each cycle.
        for name in ["pc", "state", "mem_addr", "mem_valid", "data_out", "retired"] {
            let r = rtl_state.get_scalar(name)?;
            let v = v_state.get(name).map_err(verr)?.as_u64();
            if r != v {
                return Err(LockstepError::Mismatch {
                    field: name.into(),
                    isa: format!("circuit {r:#x}"),
                    rtl: format!("verilog {v:#x}"),
                });
            }
        }
        let retired = rtl_state.get_scalar("retired")?;
        if retired != last_retired {
            last_retired = retired;
            if crate::lockstep::rtl_is_halted(&rtl_state, &env)? {
                return Ok((v_state, env, cycles));
            }
        }
        if rtl_state.get_scalar("state")? == crate::cpu::fsm::WEDGED {
            return Ok((v_state, env, cycles));
        }
    }
}

fn verr(e: verilog::eval::VError) -> LockstepError {
    LockstepError::Mismatch { field: "verilog".into(), isa: String::new(), rtl: e.to_string() }
}
