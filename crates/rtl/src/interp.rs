//! Reference interpreter for circuits — the analogue of running the
//! paper's HOL circuit functions (`AB env s n` in §3).
//!
//! Values are machine integers here, while the Verilog semantics uses bit
//! vectors; the two independent representations are what makes the
//! lockstep equivalence check in [`crate::equiv`] meaningful.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{Circuit, RBin, RExpr, RProcess, RStmt, RTy, RUn};
use crate::typecheck::RtlError;

/// A runtime value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RValue {
    /// A single bit.
    Bit(bool),
    /// A word: `(width, value)` with the value masked to the width.
    Word(usize, u64),
    /// A memory of words.
    Mem { elem: usize, data: Vec<u64> },
}

impl RValue {
    /// The zero value of a type.
    #[must_use]
    pub fn zero_of(ty: RTy) -> RValue {
        match ty {
            RTy::Bit => RValue::Bit(false),
            RTy::Word(w) => RValue::Word(w, 0),
            RTy::Mem { elem, len } => RValue::Mem { elem, data: vec![0; len] },
        }
    }

    fn as_scalar(&self) -> Option<(usize, u64)> {
        match self {
            RValue::Bit(b) => Some((1, u64::from(*b))),
            RValue::Word(w, v) => Some((*w, *v)),
            RValue::Mem { .. } => None,
        }
    }
}

fn mask(width: usize, v: u64) -> u64 {
    if width >= 64 {
        v
    } else {
        v & ((1 << width) - 1)
    }
}

fn to_signed(width: usize, v: u64) -> i64 {
    if width == 0 || width == 64 {
        return v as i64;
    }
    if v >> (width - 1) & 1 == 1 {
        (v as i64) - (1i64 << width)
    } else {
        v as i64
    }
}

/// The state of every signal in a circuit.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RtlState {
    vars: HashMap<String, RValue>,
}

impl RtlState {
    /// The all-zero state of a circuit's signals.
    #[must_use]
    pub fn zeroed(c: &Circuit) -> RtlState {
        let vars = c
            .inputs
            .iter()
            .chain(&c.regs)
            .map(|(n, ty)| (n.clone(), RValue::zero_of(*ty)))
            .collect();
        RtlState { vars }
    }

    /// Reads a signal.
    ///
    /// # Errors
    ///
    /// Unknown signal name.
    pub fn get(&self, name: &str) -> Result<&RValue, RtlError> {
        self.vars.get(name).ok_or_else(|| RtlError::Unknown(name.to_string()))
    }

    /// Reads a word or bit signal as an integer.
    ///
    /// # Errors
    ///
    /// Unknown name or memory-shaped signal.
    pub fn get_scalar(&self, name: &str) -> Result<u64, RtlError> {
        self.get(name)?
            .as_scalar()
            .map(|(_, v)| v)
            .ok_or_else(|| RtlError::ShapeMismatch(name.to_string()))
    }

    /// Writes a signal, preserving its shape.
    ///
    /// # Errors
    ///
    /// Unknown name or shape change.
    pub fn set(&mut self, name: &str, value: RValue) -> Result<(), RtlError> {
        match self.vars.get_mut(name) {
            Some(slot) => {
                let compatible = matches!(
                    (&slot, &value),
                    (RValue::Bit(_), RValue::Bit(_))
                ) || matches!((&slot, &value),
                    (RValue::Word(a, _), RValue::Word(b, _)) if a == b)
                    || matches!((&slot, &value),
                    (RValue::Mem { elem: a, data: d1 }, RValue::Mem { elem: b, data: d2 })
                        if a == b && d1.len() == d2.len());
                if !compatible {
                    return Err(RtlError::ShapeMismatch(name.to_string()));
                }
                *slot = value;
                Ok(())
            }
            None => Err(RtlError::Unknown(name.to_string())),
        }
    }

    /// Iterates over `(name, value)` pairs (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&String, &RValue)> {
        self.vars.iter()
    }
}

/// Evaluates an expression against a state.
///
/// # Errors
///
/// Any dynamic shape error; checked circuits never fail.
pub fn eval(state: &RtlState, e: &RExpr) -> Result<RValue, RtlError> {
    match e {
        RExpr::ConstBit(b) => Ok(RValue::Bit(*b)),
        RExpr::ConstWord(w, v) => Ok(RValue::Word(*w, mask(*w, *v))),
        RExpr::Read(name) => Ok(state.get(name)?.clone()),
        RExpr::ReadMem(name, idx) => {
            let i = scalar(state, idx)?.1;
            match state.get(name)? {
                RValue::Mem { elem, data } => {
                    let v = data.get(i as usize).copied().ok_or_else(|| {
                        RtlError::IndexMayEscape {
                            name: name.clone(),
                            index_width: 64,
                            len: data.len(),
                        }
                    })?;
                    Ok(RValue::Word(*elem, v))
                }
                _ => Err(RtlError::ShapeMismatch(name.clone())),
            }
        }
        RExpr::Bin(op, a, b) => {
            let va = eval(state, a)?;
            let vb = eval(state, b)?;
            bin(*op, &va, &vb)
        }
        RExpr::Un(RUn::Not, a) => match eval(state, a)? {
            RValue::Bit(b) => Ok(RValue::Bit(!b)),
            RValue::Word(w, v) => Ok(RValue::Word(w, mask(w, !v))),
            RValue::Mem { .. } => Err(RtlError::ShapeMismatch("Not".into())),
        },
        RExpr::Mux(c, t, f) => {
            let cond = match eval(state, c)? {
                RValue::Bit(b) => b,
                _ => return Err(RtlError::TypeMismatch("Mux condition".into())),
            };
            if cond {
                eval(state, t)
            } else {
                eval(state, f)
            }
        }
        RExpr::Slice(a, hi, lo) => {
            let (w, v) = scalar(state, a)?;
            if *hi >= w || lo > hi {
                return Err(RtlError::BadSlice { width: w, hi: *hi, lo: *lo });
            }
            Ok(RValue::Word(hi - lo + 1, mask(hi - lo + 1, v >> lo)))
        }
        RExpr::Concat(parts) => {
            let mut acc: u64 = 0;
            let mut total = 0;
            for p in parts.iter().rev() {
                let (w, v) = scalar(state, p)?;
                acc |= v << total;
                total += w;
                if total > 64 {
                    return Err(RtlError::ConcatTooWide(total));
                }
            }
            Ok(RValue::Word(total, acc))
        }
        RExpr::ZExt(w, a) => {
            let (_, v) = scalar(state, a)?;
            Ok(RValue::Word(*w, v))
        }
        RExpr::SExt(w, a) => {
            let (fw, v) = scalar(state, a)?;
            Ok(RValue::Word(*w, mask(*w, to_signed(fw, v) as u64)))
        }
    }
}

fn scalar(state: &RtlState, e: &RExpr) -> Result<(usize, u64), RtlError> {
    eval(state, e)?
        .as_scalar()
        .ok_or_else(|| RtlError::ShapeMismatch("scalar expected".into()))
}

fn bin(op: RBin, a: &RValue, b: &RValue) -> Result<RValue, RtlError> {
    let (wa, va) = a.as_scalar().ok_or_else(|| RtlError::ShapeMismatch(format!("{op:?}")))?;
    let (wb, vb) = b.as_scalar().ok_or_else(|| RtlError::ShapeMismatch(format!("{op:?}")))?;
    let same = || -> Result<(), RtlError> {
        if wa == wb {
            Ok(())
        } else {
            Err(RtlError::TypeMismatch(format!("{op:?}")))
        }
    };
    let keep_shape = |v: u64| -> RValue {
        match (a, b) {
            (RValue::Bit(_), RValue::Bit(_)) => RValue::Bit(v & 1 == 1),
            _ => RValue::Word(wa, mask(wa, v)),
        }
    };
    Ok(match op {
        RBin::Add => {
            same()?;
            RValue::Word(wa, mask(wa, va.wrapping_add(vb)))
        }
        RBin::Sub => {
            same()?;
            RValue::Word(wa, mask(wa, va.wrapping_sub(vb)))
        }
        RBin::Mul => {
            same()?;
            RValue::Word(wa, mask(wa, va.wrapping_mul(vb)))
        }
        RBin::And => {
            same()?;
            keep_shape(va & vb)
        }
        RBin::Or => {
            same()?;
            keep_shape(va | vb)
        }
        RBin::Xor => {
            same()?;
            keep_shape(va ^ vb)
        }
        RBin::Eq => {
            same()?;
            RValue::Bit(va == vb)
        }
        RBin::Lt => {
            same()?;
            RValue::Bit(va < vb)
        }
        RBin::Slt => {
            same()?;
            RValue::Bit(to_signed(wa, va) < to_signed(wb, vb))
        }
        RBin::Shl => RValue::Word(wa, mask(wa, if vb as usize >= wa { 0 } else { va << vb })),
        RBin::Shr => RValue::Word(wa, if vb as usize >= wa { 0 } else { va >> vb }),
        RBin::Sra => {
            let sh = (vb as usize).min(63);
            RValue::Word(wa, mask(wa, (to_signed(wa, va) >> sh) as u64))
        }
    })
}

/// Drives circuit inputs each cycle — the `env` of the paper's theorems,
/// at the circuit level (`is_lab_env acc_env cstep env` instantiates one
/// of these for the Silver processor).
pub trait RtlEnv {
    /// Produces `(input_name, value)` pairs for the given cycle, after
    /// observing the state left by the previous cycle.
    fn drive(&mut self, cycle: u64, state: &RtlState) -> Vec<(String, RValue)>;
}

/// An environment holding every input constant.
#[derive(Clone, Debug)]
pub struct FixedEnv(pub Vec<(String, RValue)>);

impl RtlEnv for FixedEnv {
    fn drive(&mut self, _cycle: u64, _state: &RtlState) -> Vec<(String, RValue)> {
        self.0.clone()
    }
}

enum Queued {
    Var(String, RValue),
    Mem(String, u64, u64),
}

fn exec(state: &mut RtlState, queue: &mut Vec<Queued>, stmts: &[RStmt]) -> Result<(), RtlError> {
    for s in stmts {
        match s {
            RStmt::If(c, t, f) => {
                let cond = match eval(state, c)? {
                    RValue::Bit(b) => b,
                    _ => return Err(RtlError::TypeMismatch("If condition".into())),
                };
                exec(state, queue, if cond { t } else { f })?;
            }
            RStmt::Case(scrut, arms, default) => {
                let (_, v) = scalar(state, scrut)?;
                let mut taken = false;
                for (labels, body) in arms {
                    if labels.contains(&v) {
                        exec(state, queue, body)?;
                        taken = true;
                        break;
                    }
                }
                if !taken {
                    if let Some(body) = default {
                        exec(state, queue, body)?;
                    }
                }
            }
            RStmt::Set(name, e) => {
                let v = eval(state, e)?;
                queue.push(Queued::Var(name.clone(), v));
            }
            RStmt::SetMem(name, idx, val) => {
                let (_, i) = scalar(state, idx)?;
                let (_, v) = scalar(state, val)?;
                queue.push(Queued::Mem(name.clone(), i, v));
            }
            RStmt::Let(name, e) => {
                let v = eval(state, e)?;
                state.set(name, v)?;
            }
        }
    }
    Ok(())
}

fn run_process(
    state: &mut RtlState,
    queue: &mut Vec<Queued>,
    p: &RProcess,
) -> Result<(), RtlError> {
    exec(state, queue, &p.body)
}

/// Executes one clock cycle: all processes read the pre-edge state; the
/// queued writes are merged afterwards (later writes win).
///
/// # Errors
///
/// Any dynamic error; checked circuits only fail on out-of-range memory
/// indices, which the checker rules out.
pub fn cycle(c: &Circuit, state: &mut RtlState) -> Result<(), RtlError> {
    let mut queue = Vec::new();
    for p in &c.processes {
        run_process(state, &mut queue, p)?;
    }
    for q in queue {
        match q {
            Queued::Var(name, v) => state.set(&name, v)?,
            Queued::Mem(name, i, v) => {
                // Clone-free in-place update of the memory word.
                match state.vars.get_mut(&name) {
                    Some(RValue::Mem { data, elem }) => {
                        let len = data.len();
                        let slot = data.get_mut(i as usize).ok_or(RtlError::IndexMayEscape {
                            name: name.clone(),
                            index_width: 64,
                            len,
                        })?;
                        *slot = mask(*elem, v);
                    }
                    _ => return Err(RtlError::ShapeMismatch(name)),
                }
            }
        }
    }
    Ok(())
}

/// Runs `c` for `cycles` cycles from `state`, driving inputs from `env`.
///
/// # Errors
///
/// Propagates any dynamic error.
pub fn run(
    c: &Circuit,
    env: &mut impl RtlEnv,
    state: &mut RtlState,
    cycles: u64,
) -> Result<(), RtlError> {
    for n in 0..cycles {
        step(c, env, state, n)?;
    }
    Ok(())
}

/// One externally-driven step: drive inputs for cycle `n`, then clock.
///
/// # Errors
///
/// Propagates any dynamic error.
pub fn step(
    c: &Circuit,
    env: &mut impl RtlEnv,
    state: &mut RtlState,
    n: u64,
) -> Result<(), RtlError> {
    for (name, v) in env.drive(n, state) {
        state.set(&name, v)?;
    }
    cycle(c, state)
}

/// Observes the post-edge state after every clock cycle — the hook the
/// observability layer (waveform dumping, cycle profiling, divergence
/// forensics) attaches to.
///
/// Like `ag32::Coverage`, the default [`NoCycleObserver`] is a
/// zero-sized no-op that monomorphises away, so
/// [`run_observed`]/[`step_observed`] with it cost exactly what
/// [`run`]/[`step`] do.
pub trait CycleObserver {
    /// Called after the clock edge of cycle `n`, with the settled state.
    fn on_cycle(&mut self, n: u64, state: &RtlState);
}

/// The no-op observer.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoCycleObserver;

impl CycleObserver for NoCycleObserver {
    #[inline(always)]
    fn on_cycle(&mut self, _n: u64, _state: &RtlState) {}
}

impl<T: CycleObserver> CycleObserver for &mut T {
    #[inline]
    fn on_cycle(&mut self, n: u64, state: &RtlState) {
        (**self).on_cycle(n, state);
    }
}

/// Fan-out: drive two observers from one run (e.g. a VCD dumper plus a
/// cycle profiler).
impl<A: CycleObserver, B: CycleObserver> CycleObserver for (A, B) {
    #[inline]
    fn on_cycle(&mut self, n: u64, state: &RtlState) {
        self.0.on_cycle(n, state);
        self.1.on_cycle(n, state);
    }
}

/// [`step`] plus a [`CycleObserver`] seeing the post-edge state.
///
/// # Errors
///
/// Propagates any dynamic error.
pub fn step_observed(
    c: &Circuit,
    env: &mut impl RtlEnv,
    state: &mut RtlState,
    n: u64,
    obs: &mut impl CycleObserver,
) -> Result<(), RtlError> {
    step(c, env, state, n)?;
    obs.on_cycle(n, state);
    Ok(())
}

/// [`run`] plus a [`CycleObserver`] seeing every post-edge state.
///
/// # Errors
///
/// Propagates any dynamic error.
pub fn run_observed(
    c: &Circuit,
    env: &mut impl RtlEnv,
    state: &mut RtlState,
    cycles: u64,
    obs: &mut impl CycleObserver,
) -> Result<(), RtlError> {
    for n in 0..cycles {
        step_observed(c, env, state, n, obs)?;
    }
    Ok(())
}

impl fmt::Display for RValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RValue::Bit(b) => write!(f, "1'b{}", u8::from(*b)),
            RValue::Word(w, v) => write!(f, "{w}'d{v}"),
            RValue::Mem { elem, data } => write!(f, "mem[{elem}] x {}", data.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn counter() -> Circuit {
        let mut b = CircuitBuilder::new("counter");
        b.input("en", RTy::Bit);
        b.reg("n", RTy::Word(8));
        b.output("n");
        b.process(vec![iff(read("en"), vec![set("n", read("n").add(word(8, 1)))], vec![])]);
        b.build()
    }

    #[test]
    fn counter_counts() {
        let c = counter();
        let mut st = RtlState::zeroed(&c);
        let mut env = FixedEnv(vec![("en".into(), RValue::Bit(true))]);
        run(&c, &mut env, &mut st, 300).unwrap();
        assert_eq!(st.get_scalar("n").unwrap(), 300 % 256, "wraps at 8 bits");
    }

    #[test]
    fn paper_ab_example() {
        // Two processes: A counts pulses, B raises done when count > 10.
        let mut b = CircuitBuilder::new("AB");
        b.input("pulse", RTy::Bit);
        b.reg("count", RTy::Word(8));
        b.reg("done", RTy::Bit);
        b.process(vec![iff(
            read("pulse"),
            vec![set("count", read("count").add(word(8, 1)))],
            vec![],
        )]);
        b.process(vec![iff(
            word(8, 10).lt(read("count")),
            vec![set("done", bit(true))],
            vec![],
        )]);
        let c = b.build();
        crate::typecheck::check(&c).unwrap();
        let mut st = RtlState::zeroed(&c);
        let mut env = FixedEnv(vec![("pulse".into(), RValue::Bit(true))]);
        // pulse_spec holds (pulse always high), so done eventually rises.
        run(&c, &mut env, &mut st, 12).unwrap();
        assert_eq!(st.get("done").unwrap(), &RValue::Bit(true));
    }

    #[test]
    fn nonblocking_swap() {
        let mut b = CircuitBuilder::new("swap");
        b.reg("a", RTy::Word(4));
        b.reg("b", RTy::Word(4));
        b.process(vec![set("a", read("b"))]);
        b.process(vec![set("b", read("a"))]);
        let c = b.build();
        let mut st = RtlState::zeroed(&c);
        st.set("a", RValue::Word(4, 3)).unwrap();
        st.set("b", RValue::Word(4, 9)).unwrap();
        cycle(&c, &mut st).unwrap();
        assert_eq!(st.get_scalar("a").unwrap(), 9);
        assert_eq!(st.get_scalar("b").unwrap(), 3);
    }

    #[test]
    fn memory_read_write() {
        let mut b = CircuitBuilder::new("rf");
        b.input("widx", RTy::Word(2));
        b.input("wdata", RTy::Word(8));
        b.reg("out", RTy::Word(8));
        b.mem("m", 8, 4);
        b.process(vec![
            set_mem("m", read("widx"), read("wdata")),
            set("out", read_mem("m", read("widx"))),
        ]);
        let c = b.build();
        crate::typecheck::check(&c).unwrap();
        let mut st = RtlState::zeroed(&c);
        let mut env = FixedEnv(vec![
            ("widx".into(), RValue::Word(2, 3)),
            ("wdata".into(), RValue::Word(8, 0x5C)),
        ]);
        step(&c, &mut env, &mut st, 0).unwrap();
        assert_eq!(st.get_scalar("out").unwrap(), 0, "read saw pre-edge memory");
        step(&c, &mut env, &mut st, 1).unwrap();
        assert_eq!(st.get_scalar("out").unwrap(), 0x5C);
    }

    #[test]
    fn expression_arithmetic_masks() {
        let st = RtlState::default();
        let v = eval(&st, &word(8, 0xFF).add(word(8, 2))).unwrap();
        assert_eq!(v, RValue::Word(8, 1));
        let v = eval(&st, &word(8, 0x80).sra(word(8, 4))).unwrap();
        assert_eq!(v, RValue::Word(8, 0xF8));
        let v = eval(&st, &word(8, 0x80).slt(word(8, 1))).unwrap();
        assert_eq!(v, RValue::Bit(true));
        let v = eval(&st, &word(4, 0b1010).slice(3, 1)).unwrap();
        assert_eq!(v, RValue::Word(3, 0b101));
        let v = eval(&st, &concat(vec![word(4, 0xA), word(4, 0x5)])).unwrap();
        assert_eq!(v, RValue::Word(8, 0xA5));
        let v = eval(&st, &word(4, 0b1000).sext(8)).unwrap();
        assert_eq!(v, RValue::Word(8, 0xF8));
    }

    #[test]
    fn case_dispatch() {
        let mut b = CircuitBuilder::new("case");
        b.input("sel", RTy::Word(2));
        b.reg("out", RTy::Word(8));
        b.process(vec![RStmt::Case(
            read("sel"),
            vec![
                (vec![0], vec![set("out", word(8, 10))]),
                (vec![1, 2], vec![set("out", word(8, 20))]),
            ],
            Some(vec![set("out", word(8, 99))]),
        )]);
        let c = b.build();
        for (sel, expect) in [(0u64, 10u64), (1, 20), (2, 20), (3, 99)] {
            let mut st = RtlState::zeroed(&c);
            let mut env = FixedEnv(vec![("sel".into(), RValue::Word(2, sel))]);
            step(&c, &mut env, &mut st, 0).unwrap();
            assert_eq!(st.get_scalar("out").unwrap(), expect, "sel={sel}");
        }
    }
}
