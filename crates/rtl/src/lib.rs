//! # rtl — circuit descriptions and the proof-producing code generator
//!
//! §3 of *Verified Compilation on a Verified Processor* (PLDI 2019)
//! describes a proof-producing code generator that "translates HOL
//! functions modelling circuits to deeply embedded Verilog programs".
//! This crate is the executable counterpart:
//!
//! * [`ast`] — a circuit description language: registers, memories and
//!   clocked processes built from conditional non-blocking writes (the
//!   shape of the paper's "circuit functions");
//! * [`typecheck`] — the well-formedness conditions the code generator
//!   imposes (declared signals, consistent widths, non-escaping memory
//!   indices, no writes to inputs);
//! * [`interp`] — a reference interpreter over machine integers, playing
//!   the role of running the HOL circuit function (`AB env s n`);
//! * [`codegen`] — the structural translation into the [`verilog`]
//!   crate's deep embedding (layer 3 → 4 of the paper's Figure 1);
//! * [`equiv`] — the stand-in for the per-run correspondence theorem:
//!   a lockstep differential simulation of circuit vs generated Verilog
//!   over shared (optionally random) input traces.
//!
//! # Example
//!
//! The paper's `AB` pulse-counter, described once, translated to
//! Verilog, and checked equivalent under 1000 cycles of random input:
//!
//! ```
//! use rtl::ast::*;
//! use rtl::{codegen, equiv};
//!
//! let mut b = CircuitBuilder::new("AB");
//! b.input("pulse", RTy::Bit);
//! b.reg("count", RTy::Word(8));
//! b.reg("done", RTy::Bit);
//! b.process(vec![iff(
//!     read("pulse"),
//!     vec![set("count", read("count").add(word(8, 1)))],
//!     vec![],
//! )]);
//! b.process(vec![iff(
//!     word(8, 10).lt(read("count")),
//!     vec![set("done", bit(true))],
//!     vec![],
//! )]);
//! let ab = b.build();
//!
//! let module = codegen::generate(&ab)?;                  // layer 4
//! let text = verilog::pretty::print_module(&module);     // input to layer 5
//! assert!(text.contains("always_ff @(posedge clk)"));
//!
//! equiv::check_equiv_random(&ab, 1234, 1000)?;           // "theorem (10)"
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ast;
pub mod codegen;
pub mod equiv;
pub mod interp;
pub mod typecheck;

pub use ast::{Circuit, CircuitBuilder, RExpr, RProcess, RStmt, RTy};
pub use codegen::generate;
pub use equiv::{check_equiv, check_equiv_observed, check_equiv_random, EquivError};
pub use interp::{CycleObserver, NoCycleObserver, RtlEnv, RtlState, RValue};
pub use typecheck::{check, RtlError};
