//! Lockstep equivalence between a circuit and its generated Verilog.
//!
//! The paper's code generator is *proof-producing*: each run emits a
//! correspondence theorem stating that the generated Verilog program has
//! the same behaviour as the input circuit function (theorem (10) for the
//! Silver CPU). In this reproduction the correspondence obligation is
//! executable: [`check_equiv`] runs the circuit interpreter and the
//! Verilog semantics side by side on a shared input trace and compares
//! every signal after every clock cycle. The two simulators use
//! different value representations (machine integers vs bit vectors), so
//! agreement is evidence about the translation, not an artefact of shared
//! code.

use std::fmt;

use testkit::rng::{Rng as _, TestRng};
use verilog::ast::ValueOrArray;
use verilog::value::Value;

use crate::ast::{Circuit, RTy};
use crate::codegen;
use crate::interp::{self, RValue, RtlState};
use crate::typecheck::RtlError;

/// Failure of the lockstep comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EquivError {
    /// The circuit failed checking or simulation.
    Rtl(RtlError),
    /// The Verilog side failed.
    Verilog(verilog::eval::VError),
    /// The two levels disagree on a signal value after some cycle.
    Mismatch {
        /// Clock cycle (0-based) after which the divergence was seen.
        cycle: u64,
        /// Signal name.
        name: String,
        /// Value at the circuit level.
        rtl: String,
        /// Value at the Verilog level.
        verilog: String,
    },
}

impl fmt::Display for EquivError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivError::Rtl(e) => write!(f, "circuit error: {e}"),
            EquivError::Verilog(e) => write!(f, "verilog error: {e}"),
            EquivError::Mismatch { cycle, name, rtl, verilog } => write!(
                f,
                "cycle {cycle}: `{name}` diverged (circuit {rtl}, verilog {verilog})"
            ),
        }
    }
}

impl std::error::Error for EquivError {}

impl From<RtlError> for EquivError {
    fn from(e: RtlError) -> Self {
        EquivError::Rtl(e)
    }
}

impl From<verilog::eval::VError> for EquivError {
    fn from(e: verilog::eval::VError) -> Self {
        EquivError::Verilog(e)
    }
}

/// Converts a circuit value to a Verilog value.
#[must_use]
pub fn to_verilog_value(rv: &RValue) -> ValueOrArray {
    match rv {
        RValue::Bit(b) => ValueOrArray::Value(Value::Bool(*b)),
        RValue::Word(w, v) => ValueOrArray::Value(Value::from_u64(*w, *v)),
        RValue::Mem { elem, data } => {
            ValueOrArray::Unpacked(data.iter().map(|&v| Value::from_u64(*elem, v)).collect())
        }
    }
}

fn values_agree(rv: &RValue, vv: &ValueOrArray) -> bool {
    to_verilog_value(rv) == *vv
}

/// Checks `cycles` cycles of lockstep agreement between `circuit` and its
/// generated Verilog, with inputs produced per cycle by `inputs`, which
/// observes the circuit-level state (so reactive environments such as
/// memory models can be used).
///
/// # Errors
///
/// Returns the first divergence or simulator error.
pub fn check_equiv(
    circuit: &Circuit,
    inputs: impl FnMut(u64, &RtlState) -> Vec<(String, RValue)>,
    cycles: u64,
) -> Result<(), EquivError> {
    check_equiv_observed(circuit, inputs, cycles, |_, _, _| {})
}

/// [`check_equiv`] with an observer seeing both post-edge states after
/// every cycle — including the divergent cycle itself, so waveform
/// capture and forensics ride along without re-simulation.
///
/// # Errors
///
/// Returns the first divergence or simulator error.
pub fn check_equiv_observed(
    circuit: &Circuit,
    mut inputs: impl FnMut(u64, &RtlState) -> Vec<(String, RValue)>,
    cycles: u64,
    mut observe: impl FnMut(u64, &RtlState, &verilog::eval::VarState),
) -> Result<(), EquivError> {
    let module = codegen::generate(circuit)?;
    let mut rtl_state = RtlState::zeroed(circuit);
    let mut v_state = module.initial_state()?;
    for cycle in 0..cycles {
        let driven = inputs(cycle, &rtl_state);
        for (name, value) in &driven {
            rtl_state.set(name, value.clone())?;
            match to_verilog_value(value) {
                ValueOrArray::Value(v) => v_state.set(name, v)?,
                ValueOrArray::Unpacked(_) => {
                    return Err(EquivError::Rtl(RtlError::ShapeMismatch(name.clone())))
                }
            }
        }
        interp::cycle(circuit, &mut rtl_state)?;
        verilog::eval::cycle(&module, &mut v_state)?;
        observe(cycle, &rtl_state, &v_state);
        for (name, _ty) in circuit.inputs.iter().chain(&circuit.regs) {
            let rv = rtl_state.get(name)?.clone();
            let vv = lookup_verilog(&v_state, name, &rv)?;
            if !values_agree(&rv, &vv) {
                return Err(EquivError::Mismatch {
                    cycle,
                    name: name.clone(),
                    rtl: rv.to_string(),
                    verilog: format!("{vv:?}"),
                });
            }
        }
    }
    Ok(())
}

fn lookup_verilog(
    st: &verilog::eval::VarState,
    name: &str,
    shape: &RValue,
) -> Result<ValueOrArray, EquivError> {
    Ok(match shape {
        RValue::Mem { elem: _, data } => {
            let mut elems = Vec::with_capacity(data.len());
            for i in 0..data.len() {
                elems.push(st.get_index(name, i as u64)?.clone());
            }
            ValueOrArray::Unpacked(elems)
        }
        _ => ValueOrArray::Value(st.get(name)?.clone()),
    })
}

/// [`check_equiv`] with uniformly random inputs of the declared widths,
/// seeded for reproducibility. This is the workhorse the test-suites use
/// as the stand-in for the code generator's correspondence theorem.
///
/// # Errors
///
/// Returns the first divergence or simulator error.
pub fn check_equiv_random(circuit: &Circuit, seed: u64, cycles: u64) -> Result<(), EquivError> {
    let mut rng = TestRng::seed_from_u64(seed);
    let input_decls: Vec<(String, RTy)> = circuit.inputs.clone();
    check_equiv(
        circuit,
        move |_cycle, _state| {
            input_decls
                .iter()
                .map(|(name, ty)| {
                    let v = match ty {
                        RTy::Bit => RValue::Bit(rng.gen()),
                        RTy::Word(w) => {
                            let raw: u64 = rng.gen();
                            RValue::Word(*w, if *w >= 64 { raw } else { raw & ((1 << w) - 1) })
                        }
                        RTy::Mem { elem, len } => RValue::Mem {
                            elem: *elem,
                            data: (0..*len).map(|_| rng.gen()).collect(),
                        },
                    };
                    (name.clone(), v)
                })
                .collect()
        },
        cycles,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    #[test]
    fn counter_equivalent() {
        let mut b = CircuitBuilder::new("counter");
        b.input("en", RTy::Bit);
        b.reg("n", RTy::Word(8));
        b.output("n");
        b.process(vec![iff(read("en"), vec![set("n", read("n").add(word(8, 1)))], vec![])]);
        check_equiv_random(&b.build(), 0xC0FFEE, 500).unwrap();
    }

    #[test]
    fn alu_like_circuit_equivalent() {
        // Exercises every binary operator plus mux/slice/concat/extends.
        let mut b = CircuitBuilder::new("alu");
        b.input("a", RTy::Word(32));
        b.input("b", RTy::Word(32));
        b.input("sel", RTy::Word(4));
        b.reg("out", RTy::Word(32));
        b.reg("flag", RTy::Bit);
        let a = || read("a");
        let bb = || read("b");
        b.process(vec![RStmt::Case(
            read("sel"),
            vec![
                (vec![0], vec![set("out", a().add(bb()))]),
                (vec![1], vec![set("out", a().sub(bb()))]),
                (vec![2], vec![set("out", a().mul(bb()))]),
                (vec![3], vec![set("out", a().and_(bb()))]),
                (vec![4], vec![set("out", a().or_(bb()))]),
                (vec![5], vec![set("out", a().xor_(bb()))]),
                (vec![6], vec![set("out", a().shl(bb().slice(4, 0).zext(32)))]),
                (vec![7], vec![set("out", a().shr(bb().slice(4, 0).zext(32)))]),
                (vec![8], vec![set("out", a().sra(bb().slice(4, 0).zext(32)))]),
                (vec![9], vec![set("flag", a().lt(bb()))]),
                (vec![10], vec![set("flag", a().slt(bb()))]),
                (vec![11], vec![set("flag", a().eq_(bb()))]),
                (vec![12], vec![set("out", a().slice(15, 0).sext(32))]),
                (
                    vec![13],
                    vec![set("out", concat(vec![a().slice(15, 0), bb().slice(15, 0)]))],
                ),
                (vec![14], vec![set("out", a().not_())]),
            ],
            Some(vec![set("out", read("flag").mux(a(), bb()))]),
        )]);
        check_equiv_random(&b.build(), 42, 2000).unwrap();
    }

    #[test]
    fn regfile_equivalent() {
        let mut b = CircuitBuilder::new("rf");
        b.input("widx", RTy::Word(4));
        b.input("ridx", RTy::Word(4));
        b.input("wdata", RTy::Word(16));
        b.input("we", RTy::Bit);
        b.reg("rdata", RTy::Word(16));
        b.mem("m", 16, 16);
        b.process(vec![
            iff(read("we"), vec![set_mem("m", read("widx"), read("wdata"))], vec![]),
            set("rdata", read_mem("m", read("ridx"))),
        ]);
        check_equiv_random(&b.build(), 7, 1000).unwrap();
    }

    #[test]
    fn mismatch_is_reported() {
        // Hand-build a deliberately broken "generated" module by mutating
        // the circuit after generation — simulate via a circuit whose
        // Verilog translation we tamper with through a wrapper check.
        // Simpler: two different circuits compared through the public
        // API is impossible, so instead check the error formatting.
        let e = EquivError::Mismatch {
            cycle: 3,
            name: "x".into(),
            rtl: "8'd1".into(),
            verilog: "8'd2".into(),
        };
        assert!(e.to_string().contains("cycle 3"));
        assert!(e.to_string().contains("`x`"));
    }
}
