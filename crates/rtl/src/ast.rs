//! The circuit description language.
//!
//! A [`Circuit`] is the analogue of the paper's "circuit functions" in
//! HOL (§3): a set of registers plus next-state processes, each process
//! a block of conditional non-blocking register writes, all clocked
//! together. Processes must be *non-interfering* — all inter-process
//! communication goes through non-blocking writes — which is exactly the
//! restriction the paper's code generator imposes.

use std::fmt;

/// The type of a signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RTy {
    /// A single bit.
    Bit,
    /// A word of the given width (1..=64 bits).
    Word(usize),
    /// A memory: `len` words of `elem` bits (the register file).
    Mem { elem: usize, len: usize },
}

/// Binary operators; see [`verilog::ast::Binop`] for the semantics each
/// one maps to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RBin {
    /// Modular addition.
    Add,
    /// Modular subtraction.
    Sub,
    /// Modular multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Equality (produces a bit).
    Eq,
    /// Unsigned less-than (produces a bit).
    Lt,
    /// Signed less-than (produces a bit).
    Slt,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sra,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RUn {
    /// Bitwise complement.
    Not,
}

/// Combinational expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RExpr {
    /// A one-bit constant.
    ConstBit(bool),
    /// A `width`-bit constant.
    ConstWord(usize, u64),
    /// Read a register or input.
    Read(String),
    /// Read a memory element.
    ReadMem(String, Box<RExpr>),
    /// Binary operation.
    Bin(RBin, Box<RExpr>, Box<RExpr>),
    /// Unary operation.
    Un(RUn, Box<RExpr>),
    /// `cond ? t : f` — `cond` must be a bit.
    Mux(Box<RExpr>, Box<RExpr>, Box<RExpr>),
    /// Bit slice `[hi:lo]`, inclusive.
    Slice(Box<RExpr>, usize, usize),
    /// Concatenation, first element most significant.
    Concat(Vec<RExpr>),
    /// Zero-extension to the given width.
    ZExt(usize, Box<RExpr>),
    /// Sign-extension to the given width.
    SExt(usize, Box<RExpr>),
}

/// Builds a one-bit constant.
#[must_use]
pub fn bit(b: bool) -> RExpr {
    RExpr::ConstBit(b)
}

/// Builds a `width`-bit constant from the low bits of `v`.
#[must_use]
pub fn word(width: usize, v: u64) -> RExpr {
    let masked = if width >= 64 { v } else { v & ((1 << width) - 1) };
    RExpr::ConstWord(width, masked)
}

/// Reads a signal by name.
#[must_use]
pub fn read(name: impl Into<String>) -> RExpr {
    RExpr::Read(name.into())
}

/// Reads `mem[idx]`.
#[must_use]
pub fn read_mem(name: impl Into<String>, idx: RExpr) -> RExpr {
    RExpr::ReadMem(name.into(), Box::new(idx))
}

macro_rules! bin_method {
    ($(#[$doc:meta])* $name:ident, $op:ident) => {
        $(#[$doc])*
        #[must_use]
        pub fn $name(self, rhs: RExpr) -> RExpr {
            RExpr::Bin(RBin::$op, Box::new(self), Box::new(rhs))
        }
    };
}

impl RExpr {
    bin_method!(/// Modular addition.
        add, Add);
    bin_method!(/// Modular subtraction.
        sub, Sub);
    bin_method!(/// Modular multiplication.
        mul, Mul);
    bin_method!(/// Bitwise and.
        and_, And);
    bin_method!(/// Bitwise or.
        or_, Or);
    bin_method!(/// Bitwise xor.
        xor_, Xor);
    bin_method!(/// Equality; produces a bit.
        eq_, Eq);
    bin_method!(/// Unsigned less-than; produces a bit.
        lt, Lt);
    bin_method!(/// Signed less-than; produces a bit.
        slt, Slt);
    bin_method!(/// Logical shift left.
        shl, Shl);
    bin_method!(/// Logical shift right.
        shr, Shr);
    bin_method!(/// Arithmetic shift right.
        sra, Sra);

    /// Bitwise complement.
    #[must_use]
    pub fn not_(self) -> RExpr {
        RExpr::Un(RUn::Not, Box::new(self))
    }

    /// Inequality; produces a bit.
    #[must_use]
    pub fn ne(self, rhs: RExpr) -> RExpr {
        self.eq_(rhs).not_()
    }

    /// `self ? t : f` — the receiver must be a bit.
    #[must_use]
    pub fn mux(self, t: RExpr, f: RExpr) -> RExpr {
        RExpr::Mux(Box::new(self), Box::new(t), Box::new(f))
    }

    /// Bit slice `[hi:lo]`, inclusive, LSB-numbered.
    #[must_use]
    pub fn slice(self, hi: usize, lo: usize) -> RExpr {
        RExpr::Slice(Box::new(self), hi, lo)
    }

    /// Zero-extension to `width` bits.
    #[must_use]
    pub fn zext(self, width: usize) -> RExpr {
        RExpr::ZExt(width, Box::new(self))
    }

    /// Sign-extension to `width` bits.
    #[must_use]
    pub fn sext(self, width: usize) -> RExpr {
        RExpr::SExt(width, Box::new(self))
    }

    /// Whether the word is zero; produces a bit.
    #[must_use]
    pub fn is_zero(self, width: usize) -> RExpr {
        self.eq_(word(width, 0))
    }
}

/// Concatenation, first element most significant.
#[must_use]
pub fn concat(parts: Vec<RExpr>) -> RExpr {
    RExpr::Concat(parts)
}

/// Statements of a process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RStmt {
    /// Conditional.
    If(RExpr, Vec<RStmt>, Vec<RStmt>),
    /// Case dispatch on a word; arm labels are constants of the
    /// scrutinee's width.
    Case(RExpr, Vec<(Vec<u64>, Vec<RStmt>)>, Option<Vec<RStmt>>),
    /// Non-blocking register write, effective at the end of the cycle.
    Set(String, RExpr),
    /// Non-blocking memory-element write.
    SetMem(String, RExpr, RExpr),
    /// Blocking write, effective immediately — a named combinational
    /// intermediate (a *wire* in hardware terms). Generated Verilog uses
    /// a blocking assignment, which is only sound for process-local
    /// signals; the Silver CPU keeps all of these inside its single
    /// process, satisfying the paper's non-interference restriction.
    Let(String, RExpr),
}

/// Non-blocking register write.
#[must_use]
pub fn set(name: impl Into<String>, e: RExpr) -> RStmt {
    RStmt::Set(name.into(), e)
}

/// Non-blocking memory-element write.
#[must_use]
pub fn set_mem(name: impl Into<String>, idx: RExpr, val: RExpr) -> RStmt {
    RStmt::SetMem(name.into(), idx, val)
}

/// Blocking (immediate) write to a combinational intermediate.
#[must_use]
pub fn let_(name: impl Into<String>, e: RExpr) -> RStmt {
    RStmt::Let(name.into(), e)
}

/// Conditional statement.
#[must_use]
pub fn iff(cond: RExpr, then_b: Vec<RStmt>, else_b: Vec<RStmt>) -> RStmt {
    RStmt::If(cond, then_b, else_b)
}

/// A process: one `always_ff` block after code generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RProcess {
    /// Statements run each cycle.
    pub body: Vec<RStmt>,
}

/// A complete circuit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Circuit {
    /// Circuit (module) name.
    pub name: String,
    /// Inputs driven by the environment each cycle.
    pub inputs: Vec<(String, RTy)>,
    /// Registers (state elements).
    pub regs: Vec<(String, RTy)>,
    /// Names of registers exposed as module outputs after codegen.
    pub outputs: Vec<String>,
    /// Next-state processes.
    pub processes: Vec<RProcess>,
}

/// Incremental construction of a [`Circuit`].
///
/// # Example
///
/// ```
/// use rtl::ast::*;
///
/// let mut b = CircuitBuilder::new("counter");
/// b.input("en", RTy::Bit);
/// b.reg("n", RTy::Word(8));
/// b.output("n");
/// b.process(vec![iff(read("en"), vec![set("n", read("n").add(word(8, 1)))], vec![])]);
/// let circuit = b.build();
/// assert_eq!(circuit.regs.len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CircuitBuilder {
    circuit: Circuit,
}

impl CircuitBuilder {
    /// Starts a circuit with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder { circuit: Circuit { name: name.into(), ..Circuit::default() } }
    }

    /// Declares an input and returns an expression reading it.
    pub fn input(&mut self, name: impl Into<String>, ty: RTy) -> RExpr {
        let name = name.into();
        self.circuit.inputs.push((name.clone(), ty));
        RExpr::Read(name)
    }

    /// Declares a register and returns an expression reading it.
    pub fn reg(&mut self, name: impl Into<String>, ty: RTy) -> RExpr {
        let name = name.into();
        self.circuit.regs.push((name.clone(), ty));
        RExpr::Read(name)
    }

    /// Declares a memory (returns nothing; read with [`read_mem`]).
    pub fn mem(&mut self, name: impl Into<String>, elem: usize, len: usize) {
        self.circuit.regs.push((name.into(), RTy::Mem { elem, len }));
    }

    /// Marks a register as a module output.
    pub fn output(&mut self, name: impl Into<String>) {
        self.circuit.outputs.push(name.into());
    }

    /// Adds a process.
    pub fn process(&mut self, body: Vec<RStmt>) {
        self.circuit.processes.push(RProcess { body });
    }

    /// Finishes construction.
    #[must_use]
    pub fn build(self) -> Circuit {
        self.circuit
    }
}

impl fmt::Display for RTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RTy::Bit => write!(f, "bit"),
            RTy::Word(w) => write!(f, "word[{w}]"),
            RTy::Mem { elem, len } => write!(f, "mem[{elem}][{len}]"),
        }
    }
}
