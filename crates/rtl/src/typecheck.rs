//! Static well-formedness checking of circuits.
//!
//! The paper's code generator only accepts circuit functions of a
//! restricted shape; this module enforces the corresponding conditions:
//! declared signals only, width-consistent expressions, writes only to
//! registers (never to inputs), and memory indices that can never leave
//! the array (so the generated Verilog cannot hit an out-of-bounds read).

use std::collections::HashMap;
use std::fmt;

use crate::ast::{Circuit, RBin, RExpr, RStmt, RTy, RUn};

/// The type of an expression: a bit or a word of known width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Width {
    /// One bit.
    Bit,
    /// A word of the given width.
    Word(usize),
}

/// Circuit well-formedness errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RtlError {
    /// Signal declared twice.
    Duplicate(String),
    /// Reference to an undeclared signal.
    Unknown(String),
    /// A memory was used as a plain signal or vice versa.
    ShapeMismatch(String),
    /// Word width outside 1..=64.
    BadWidth(usize),
    /// A constant does not fit its declared width.
    ConstantTooWide { width: usize, value: u64 },
    /// Operand types disagree (context names the construct).
    TypeMismatch(String),
    /// Slice bounds invalid for the operand.
    BadSlice { width: usize, hi: usize, lo: usize },
    /// Extension would narrow.
    ExtNarrows { from: usize, to: usize },
    /// A memory index wide enough to overflow the array.
    IndexMayEscape { name: String, index_width: usize, len: usize },
    /// Write to an input.
    WriteToInput(String),
    /// An output names a missing or memory-typed register.
    BadOutput(String),
    /// Concatenation result exceeds 64 bits.
    ConcatTooWide(usize),
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::Duplicate(n) => write!(f, "signal `{n}` declared twice"),
            RtlError::Unknown(n) => write!(f, "unknown signal `{n}`"),
            RtlError::ShapeMismatch(n) => write!(f, "signal `{n}` used at the wrong shape"),
            RtlError::BadWidth(w) => write!(f, "width {w} outside 1..=64"),
            RtlError::ConstantTooWide { width, value } => {
                write!(f, "constant {value} does not fit {width} bits")
            }
            RtlError::TypeMismatch(ctx) => write!(f, "type mismatch in {ctx}"),
            RtlError::BadSlice { width, hi, lo } => {
                write!(f, "slice [{hi}:{lo}] invalid for {width}-bit operand")
            }
            RtlError::ExtNarrows { from, to } => {
                write!(f, "extension from {from} to {to} bits would narrow")
            }
            RtlError::IndexMayEscape { name, index_width, len } => write!(
                f,
                "a {index_width}-bit index can escape memory `{name}` of length {len}"
            ),
            RtlError::WriteToInput(n) => write!(f, "write to input `{n}`"),
            RtlError::BadOutput(n) => write!(f, "output `{n}` is not a plain register"),
            RtlError::ConcatTooWide(w) => write!(f, "concatenation of {w} bits exceeds 64"),
        }
    }
}

impl std::error::Error for RtlError {}

/// The signal environment of a checked circuit.
pub(crate) type SigEnv = HashMap<String, RTy>;

pub(crate) fn signal_env(c: &Circuit) -> Result<SigEnv, RtlError> {
    let mut env = SigEnv::new();
    for (name, ty) in c.inputs.iter().chain(&c.regs) {
        if let RTy::Word(w) = ty {
            if *w == 0 || *w > 64 {
                return Err(RtlError::BadWidth(*w));
            }
        }
        if let RTy::Mem { elem, len } = ty {
            if *elem == 0 || *elem > 64 || *len == 0 {
                return Err(RtlError::BadWidth(*elem));
            }
        }
        if env.insert(name.clone(), *ty).is_some() {
            return Err(RtlError::Duplicate(name.clone()));
        }
    }
    Ok(env)
}

/// Infers the [`Width`] of an expression.
pub(crate) fn expr_width(env: &SigEnv, e: &RExpr) -> Result<Width, RtlError> {
    match e {
        RExpr::ConstBit(_) => Ok(Width::Bit),
        RExpr::ConstWord(w, v) => {
            if *w == 0 || *w > 64 {
                return Err(RtlError::BadWidth(*w));
            }
            if *w < 64 && *v >> *w != 0 {
                return Err(RtlError::ConstantTooWide { width: *w, value: *v });
            }
            Ok(Width::Word(*w))
        }
        RExpr::Read(name) => match env.get(name) {
            Some(RTy::Bit) => Ok(Width::Bit),
            Some(RTy::Word(w)) => Ok(Width::Word(*w)),
            Some(RTy::Mem { .. }) => Err(RtlError::ShapeMismatch(name.clone())),
            None => Err(RtlError::Unknown(name.clone())),
        },
        RExpr::ReadMem(name, idx) => {
            let (elem, len) = match env.get(name) {
                Some(RTy::Mem { elem, len }) => (*elem, *len),
                Some(_) => return Err(RtlError::ShapeMismatch(name.clone())),
                None => return Err(RtlError::Unknown(name.clone())),
            };
            match expr_width(env, idx)? {
                Width::Word(iw) if iw < 64 && (1u128 << iw) <= len as u128 => {
                    Ok(Width::Word(elem))
                }
                Width::Word(iw) => {
                    Err(RtlError::IndexMayEscape { name: name.clone(), index_width: iw, len })
                }
                Width::Bit if len >= 2 => Ok(Width::Word(elem)),
                Width::Bit => {
                    Err(RtlError::IndexMayEscape { name: name.clone(), index_width: 1, len })
                }
            }
        }
        RExpr::Bin(op, a, b) => {
            let wa = expr_width(env, a)?;
            let wb = expr_width(env, b)?;
            match op {
                RBin::And | RBin::Or | RBin::Xor => {
                    if wa == wb {
                        Ok(wa)
                    } else {
                        Err(RtlError::TypeMismatch(format!("{op:?}")))
                    }
                }
                RBin::Eq => {
                    if wa == wb {
                        Ok(Width::Bit)
                    } else {
                        Err(RtlError::TypeMismatch("Eq".into()))
                    }
                }
                RBin::Lt | RBin::Slt => match (wa, wb) {
                    (Width::Word(x), Width::Word(y)) if x == y => Ok(Width::Bit),
                    _ => Err(RtlError::TypeMismatch(format!("{op:?}"))),
                },
                RBin::Add | RBin::Sub | RBin::Mul => match (wa, wb) {
                    (Width::Word(x), Width::Word(y)) if x == y => Ok(Width::Word(x)),
                    _ => Err(RtlError::TypeMismatch(format!("{op:?}"))),
                },
                RBin::Shl | RBin::Shr | RBin::Sra => match (wa, wb) {
                    (Width::Word(x), Width::Word(_)) => Ok(Width::Word(x)),
                    _ => Err(RtlError::TypeMismatch(format!("{op:?}"))),
                },
            }
        }
        RExpr::Un(RUn::Not, a) => expr_width(env, a),
        RExpr::Mux(c, t, f) => {
            if expr_width(env, c)? != Width::Bit {
                return Err(RtlError::TypeMismatch("Mux condition".into()));
            }
            let wt = expr_width(env, t)?;
            let wf = expr_width(env, f)?;
            if wt == wf {
                Ok(wt)
            } else {
                Err(RtlError::TypeMismatch("Mux arms".into()))
            }
        }
        RExpr::Slice(a, hi, lo) => match expr_width(env, a)? {
            Width::Word(w) if *hi < w && lo <= hi => Ok(Width::Word(hi - lo + 1)),
            Width::Word(w) => Err(RtlError::BadSlice { width: w, hi: *hi, lo: *lo }),
            Width::Bit => Err(RtlError::TypeMismatch("Slice of a bit".into())),
        },
        RExpr::Concat(parts) => {
            if parts.is_empty() {
                return Err(RtlError::TypeMismatch("empty Concat".into()));
            }
            let mut total = 0;
            for p in parts {
                total += match expr_width(env, p)? {
                    Width::Bit => 1,
                    Width::Word(w) => w,
                };
            }
            if total > 64 {
                return Err(RtlError::ConcatTooWide(total));
            }
            Ok(Width::Word(total))
        }
        RExpr::ZExt(w, a) | RExpr::SExt(w, a) => {
            if *w == 0 || *w > 64 {
                return Err(RtlError::BadWidth(*w));
            }
            let from = match expr_width(env, a)? {
                Width::Bit => 1,
                Width::Word(x) => x,
            };
            if from > *w {
                return Err(RtlError::ExtNarrows { from, to: *w });
            }
            Ok(Width::Word(*w))
        }
    }
}

fn check_stmt(env: &SigEnv, inputs: &SigEnv, s: &RStmt) -> Result<(), RtlError> {
    match s {
        RStmt::If(cond, then_b, else_b) => {
            if expr_width(env, cond)? != Width::Bit {
                return Err(RtlError::TypeMismatch("If condition".into()));
            }
            for s in then_b.iter().chain(else_b) {
                check_stmt(env, inputs, s)?;
            }
            Ok(())
        }
        RStmt::Case(scrut, arms, default) => {
            let w = match expr_width(env, scrut)? {
                Width::Word(w) => w,
                Width::Bit => 1,
            };
            for (labels, body) in arms {
                for &l in labels {
                    if w < 64 && l >> w != 0 {
                        return Err(RtlError::ConstantTooWide { width: w, value: l });
                    }
                }
                for s in body {
                    check_stmt(env, inputs, s)?;
                }
            }
            if let Some(body) = default {
                for s in body {
                    check_stmt(env, inputs, s)?;
                }
            }
            Ok(())
        }
        RStmt::Set(name, e) | RStmt::Let(name, e) => {
            if inputs.contains_key(name) {
                return Err(RtlError::WriteToInput(name.clone()));
            }
            let declared = match env.get(name) {
                Some(RTy::Bit) => Width::Bit,
                Some(RTy::Word(w)) => Width::Word(*w),
                Some(RTy::Mem { .. }) => return Err(RtlError::ShapeMismatch(name.clone())),
                None => return Err(RtlError::Unknown(name.clone())),
            };
            let got = expr_width(env, e)?;
            if declared == got {
                Ok(())
            } else {
                Err(RtlError::TypeMismatch(format!("assignment to `{name}`")))
            }
        }
        RStmt::SetMem(name, idx, val) => {
            if inputs.contains_key(name) {
                return Err(RtlError::WriteToInput(name.clone()));
            }
            let (elem, len) = match env.get(name) {
                Some(RTy::Mem { elem, len }) => (*elem, *len),
                Some(_) => return Err(RtlError::ShapeMismatch(name.clone())),
                None => return Err(RtlError::Unknown(name.clone())),
            };
            match expr_width(env, idx)? {
                Width::Word(iw) if iw < 64 && (1u128 << iw) <= len as u128 => {}
                Width::Bit if len >= 2 => {}
                Width::Word(iw) => {
                    return Err(RtlError::IndexMayEscape {
                        name: name.clone(),
                        index_width: iw,
                        len,
                    })
                }
                Width::Bit => {
                    return Err(RtlError::IndexMayEscape {
                        name: name.clone(),
                        index_width: 1,
                        len,
                    })
                }
            }
            if expr_width(env, val)? == Width::Word(elem) {
                Ok(())
            } else {
                Err(RtlError::TypeMismatch(format!("memory write to `{name}`")))
            }
        }
    }
}

/// Checks a whole circuit; returns its signal environment on success.
///
/// # Errors
///
/// The first [`RtlError`] found, in declaration/program order.
pub fn check(c: &Circuit) -> Result<(), RtlError> {
    let env = signal_env(c)?;
    let inputs: SigEnv = c.inputs.iter().cloned().collect();
    for out in &c.outputs {
        match env.get(out) {
            Some(RTy::Bit | RTy::Word(_)) if !inputs.contains_key(out) => {}
            _ => return Err(RtlError::BadOutput(out.clone())),
        }
    }
    for p in &c.processes {
        for s in &p.body {
            check_stmt(&env, &inputs, s)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn counter() -> Circuit {
        let mut b = CircuitBuilder::new("counter");
        b.input("en", RTy::Bit);
        b.reg("n", RTy::Word(8));
        b.output("n");
        b.process(vec![iff(read("en"), vec![set("n", read("n").add(word(8, 1)))], vec![])]);
        b.build()
    }

    #[test]
    fn accepts_counter() {
        assert_eq!(check(&counter()), Ok(()));
    }

    #[test]
    fn rejects_unknown_signal() {
        let mut c = counter();
        c.processes[0].body.push(set("ghost", word(8, 0)));
        assert_eq!(check(&c), Err(RtlError::Unknown("ghost".into())));
    }

    #[test]
    fn rejects_width_mismatch() {
        let mut c = counter();
        c.processes[0].body.push(set("n", word(9, 0)));
        assert!(matches!(check(&c), Err(RtlError::TypeMismatch(_))));
    }

    #[test]
    fn rejects_write_to_input() {
        let mut c = counter();
        c.processes[0].body.push(set("en", bit(false)));
        assert_eq!(check(&c), Err(RtlError::WriteToInput("en".into())));
    }

    #[test]
    fn rejects_escaping_memory_index() {
        let mut b = CircuitBuilder::new("m");
        b.mem("regs", 32, 48); // not a power of two
        b.reg("x", RTy::Word(32));
        b.process(vec![set("x", read_mem("regs", word(6, 0)))]);
        let c = b.build();
        assert!(matches!(check(&c), Err(RtlError::IndexMayEscape { .. })));
    }

    #[test]
    fn accepts_exact_memory_index() {
        let mut b = CircuitBuilder::new("m");
        b.mem("regs", 32, 64);
        b.reg("x", RTy::Word(32));
        b.process(vec![set("x", read_mem("regs", word(6, 0)))]);
        assert_eq!(check(&b.build()), Ok(()));
    }

    #[test]
    fn rejects_duplicate_declaration() {
        let mut c = counter();
        c.regs.push(("en".into(), RTy::Bit));
        assert_eq!(check(&c), Err(RtlError::Duplicate("en".into())));
    }

    #[test]
    fn rejects_bad_output() {
        let mut c = counter();
        c.outputs.push("en".into());
        assert_eq!(check(&c), Err(RtlError::BadOutput("en".into())));
    }

    #[test]
    fn mux_requires_bit_condition() {
        let env: SigEnv = [("w".to_string(), RTy::Word(4))].into_iter().collect();
        let e = read("w").mux(word(4, 1), word(4, 2));
        assert!(matches!(expr_width(&env, &e), Err(RtlError::TypeMismatch(_))));
    }

    #[test]
    fn concat_width_sums() {
        let env = SigEnv::new();
        let e = concat(vec![word(8, 1), bit(true), word(7, 2)]);
        assert_eq!(expr_width(&env, &e), Ok(Width::Word(16)));
    }

    #[test]
    fn slice_bounds_checked() {
        let env = SigEnv::new();
        let e = word(8, 0).slice(8, 0);
        assert!(matches!(expr_width(&env, &e), Err(RtlError::BadSlice { .. })));
    }
}
