//! The Verilog code generator (§3 "Producing Verified Hardware").
//!
//! Translates a checked [`Circuit`] into a deeply-embedded
//! [`verilog::Module`]: one `always_ff @(posedge clk)` process per
//! circuit process, inputs and outputs as ports, registers as module
//! variables. The translation is structural — exactly the property that
//! makes the paper's per-run correspondence theorem provable. Here the
//! correspondence theorem is replaced by the executable lockstep check in
//! [`crate::equiv`].

use verilog::ast as v;
use verilog::value::Value;

use crate::ast::{Circuit, RBin, RExpr, RStmt, RTy, RUn};
use crate::typecheck::{self, RtlError, Width};

fn gen_ty(ty: RTy) -> v::Type {
    match ty {
        RTy::Bit => v::Type::Logic,
        RTy::Word(w) => v::Type::Array(w),
        RTy::Mem { elem, len } => v::Type::Unpacked { elem_width: elem, len },
    }
}

fn gen_bin(op: RBin) -> v::Binop {
    match op {
        RBin::Add => v::Binop::Add,
        RBin::Sub => v::Binop::Sub,
        RBin::Mul => v::Binop::Mul,
        RBin::And => v::Binop::And,
        RBin::Or => v::Binop::Or,
        RBin::Xor => v::Binop::Xor,
        RBin::Eq => v::Binop::Eq,
        RBin::Lt => v::Binop::Lt,
        RBin::Slt => v::Binop::Slt,
        RBin::Shl => v::Binop::Shl,
        RBin::Shr => v::Binop::Shr,
        RBin::Sra => v::Binop::Sra,
    }
}

fn gen_expr(e: &RExpr) -> v::Expr {
    match e {
        RExpr::ConstBit(b) => v::Expr::Const(Value::Bool(*b)),
        RExpr::ConstWord(w, val) => v::Expr::Const(Value::from_u64(*w, *val)),
        RExpr::Read(name) => v::Expr::Var(name.clone()),
        RExpr::ReadMem(name, idx) => v::Expr::Index(name.clone(), Box::new(gen_expr(idx))),
        RExpr::Bin(op, a, b) => {
            v::Expr::Binop(gen_bin(*op), Box::new(gen_expr(a)), Box::new(gen_expr(b)))
        }
        RExpr::Un(RUn::Not, a) => v::Expr::Unop(v::Unop::Not, Box::new(gen_expr(a))),
        RExpr::Mux(c, t, f) => v::Expr::Cond(
            Box::new(gen_expr(c)),
            Box::new(gen_expr(t)),
            Box::new(gen_expr(f)),
        ),
        RExpr::Slice(a, hi, lo) => v::Expr::Slice(Box::new(gen_expr(a)), *hi, *lo),
        RExpr::Concat(parts) => v::Expr::Concat(parts.iter().map(gen_expr).collect()),
        RExpr::ZExt(w, a) => v::Expr::ZExt(*w, Box::new(gen_expr(a))),
        RExpr::SExt(w, a) => v::Expr::SExt(*w, Box::new(gen_expr(a))),
    }
}

fn gen_stmts(env: &typecheck::SigEnv, stmts: &[RStmt]) -> Result<Vec<v::Stmt>, RtlError> {
    stmts.iter().map(|s| gen_stmt(env, s)).collect()
}

fn gen_stmt(env: &typecheck::SigEnv, s: &RStmt) -> Result<v::Stmt, RtlError> {
    Ok(match s {
        RStmt::If(c, t, f) => v::Stmt::If(gen_expr(c), gen_stmts(env, t)?, gen_stmts(env, f)?),
        RStmt::Case(scrut, arms, default) => {
            let width = typecheck::expr_width(env, scrut)?;
            let to_value = |label: u64| match width {
                Width::Bit => Value::Bool(label & 1 == 1),
                Width::Word(w) => Value::from_u64(w, label),
            };
            let varms = arms
                .iter()
                .map(|(labels, body)| {
                    Ok((labels.iter().map(|&l| to_value(l)).collect(), gen_stmts(env, body)?))
                })
                .collect::<Result<Vec<_>, RtlError>>()?;
            let vdefault = default.as_ref().map(|d| gen_stmts(env, d)).transpose()?;
            v::Stmt::Case(gen_expr(scrut), varms, vdefault)
        }
        RStmt::Set(name, e) => v::Stmt::NonBlocking(v::Lhs::Var(name.clone()), gen_expr(e)),
        RStmt::SetMem(name, idx, val) => {
            v::Stmt::NonBlocking(v::Lhs::Index(name.clone(), gen_expr(idx)), gen_expr(val))
        }
        RStmt::Let(name, e) => v::Stmt::Blocking(v::Lhs::Var(name.clone()), gen_expr(e)),
    })
}

/// Generates a Verilog module from a circuit.
///
/// The circuit is [checked](crate::typecheck::check) first, mirroring the
/// paper's code generator, which only succeeds on well-formed inputs.
///
/// # Errors
///
/// Any [`RtlError`] reported by the checker.
pub fn generate(c: &Circuit) -> Result<v::Module, RtlError> {
    typecheck::check(c)?;
    let env = typecheck::signal_env(c)?;
    let mut ports: Vec<v::Port> = c
        .inputs
        .iter()
        .map(|(name, ty)| v::Port { name: name.clone(), dir: v::Dir::Input, ty: gen_ty(*ty) })
        .collect();
    let mut vars = Vec::new();
    for (name, ty) in &c.regs {
        if c.outputs.contains(name) {
            ports.push(v::Port { name: name.clone(), dir: v::Dir::Output, ty: gen_ty(*ty) });
        } else {
            vars.push(v::VarDecl { name: name.clone(), ty: gen_ty(*ty) });
        }
    }
    let processes = c
        .processes
        .iter()
        .map(|p| Ok(v::Process { body: gen_stmts(&env, &p.body)? }))
        .collect::<Result<Vec<_>, RtlError>>()?;
    Ok(v::Module { name: c.name.clone(), ports, vars, processes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    #[test]
    fn counter_module_shape() {
        let mut b = CircuitBuilder::new("counter");
        b.input("en", RTy::Bit);
        b.reg("n", RTy::Word(8));
        b.reg("hidden", RTy::Word(4));
        b.output("n");
        b.process(vec![iff(read("en"), vec![set("n", read("n").add(word(8, 1)))], vec![])]);
        let m = generate(&b.build()).unwrap();
        assert_eq!(m.name, "counter");
        assert_eq!(m.ports.len(), 2, "en input + n output");
        assert_eq!(m.ports[1].dir, v::Dir::Output);
        assert_eq!(m.vars.len(), 1, "hidden register stays internal");
        assert_eq!(m.processes.len(), 1);
    }

    #[test]
    fn rejects_ill_typed_circuit() {
        let mut b = CircuitBuilder::new("bad");
        b.reg("x", RTy::Word(8));
        b.process(vec![set("x", word(9, 0))]);
        assert!(generate(&b.build()).is_err());
    }

    #[test]
    fn case_labels_take_scrutinee_width() {
        let mut b = CircuitBuilder::new("c");
        b.input("sel", RTy::Word(3));
        b.reg("out", RTy::Word(8));
        b.process(vec![RStmt::Case(
            read("sel"),
            vec![(vec![5], vec![set("out", word(8, 1))])],
            None,
        )]);
        let m = generate(&b.build()).unwrap();
        match &m.processes[0].body[0] {
            v::Stmt::Case(_, arms, _) => {
                assert_eq!(arms[0].0[0], Value::from_u64(3, 5));
            }
            other => panic!("expected case, got {other:?}"),
        }
    }

    #[test]
    fn memory_becomes_unpacked_array() {
        let mut b = CircuitBuilder::new("rf");
        b.mem("regs", 32, 64);
        b.reg("out", RTy::Word(32));
        b.process(vec![set("out", read_mem("regs", word(6, 1)))]);
        let m = generate(&b.build()).unwrap();
        assert!(m
            .vars
            .iter()
            .any(|v| v.name == "regs" && v.ty == v::Type::Unpacked { elem_width: 32, len: 64 }));
    }
}
