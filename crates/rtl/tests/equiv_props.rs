//! Property tests: circuit-vs-Verilog lockstep equivalence over random
//! seeds, and interpreter laws.

use rtl::ast::*;
use rtl::interp::{FixedEnv, RValue, RtlState};
use rtl::{check_equiv_random, interp};

fn shifter_circuit() -> Circuit {
    let mut b = CircuitBuilder::new("shifter");
    b.input("x", RTy::Word(32));
    b.input("amt", RTy::Word(5));
    b.input("kind", RTy::Word(2));
    b.reg("out", RTy::Word(32));
    // A barrel shifter with rotate-right built from two shifts — the same
    // decomposition the Silver CPU uses, since Verilog lacks a rotate.
    let x = || read("x");
    let amt32 = || read("amt").zext(32);
    b.process(vec![RStmt::Case(
        read("kind"),
        vec![
            (vec![0], vec![set("out", x().shl(amt32()))]),
            (vec![1], vec![set("out", x().shr(amt32()))]),
            (vec![2], vec![set("out", x().sra(amt32()))]),
            (
                vec![3],
                vec![set(
                    "out",
                    read("amt")
                        .eq_(word(5, 0))
                        .mux(x(), x().shr(amt32()).or_(x().shl(word(32, 32).sub(amt32())))),
                )],
            ),
        ],
        None,
    )]);
    b.build()
}

testkit::props! {
    #![cases = 16]

    /// Theorem-(10) analog on a shifting circuit: any random input trace
    /// keeps the circuit and its generated Verilog in lockstep.
    fn shifter_equivalence(ctx) {
        let seed = ctx.any::<u64>();
        check_equiv_random(&shifter_circuit(), seed, 200).unwrap();
    }

    /// The circuit interpreter is deterministic.
    fn interpreter_deterministic(ctx) {
        let seed = ctx.any::<u64>();
        let c = shifter_circuit();
        let mut s1 = RtlState::zeroed(&c);
        let mut s2 = RtlState::zeroed(&c);
        let inputs = vec![
            ("x".to_string(), RValue::Word(32, seed & 0xFFFF_FFFF)),
            ("amt".to_string(), RValue::Word(5, seed >> 32 & 31)),
            ("kind".to_string(), RValue::Word(2, seed >> 40 & 3)),
        ];
        let mut env1 = FixedEnv(inputs.clone());
        let mut env2 = FixedEnv(inputs);
        interp::run(&c, &mut env1, &mut s1, 10).unwrap();
        interp::run(&c, &mut env2, &mut s2, 10).unwrap();
        assert_eq!(s1, s2);
    }

    /// Rotate-right by `amt` equals the ISA's rotate.
    fn rotate_matches_native(ctx) {
        let x = ctx.any::<u32>();
        let amt = ctx.gen_range(0u32..32);
        let c = shifter_circuit();
        let mut st = RtlState::zeroed(&c);
        let mut env = FixedEnv(vec![
            ("x".to_string(), RValue::Word(32, u64::from(x))),
            ("amt".to_string(), RValue::Word(5, u64::from(amt))),
            ("kind".to_string(), RValue::Word(2, 3)),
        ]);
        interp::run(&c, &mut env, &mut st, 1).unwrap();
        assert_eq!(
            st.get_scalar("out").unwrap() as u32,
            x.rotate_right(amt)
        );
    }
}

#[test]
fn generated_verilog_pretty_prints() {
    let m = rtl::generate(&shifter_circuit()).unwrap();
    let text = verilog::pretty::print_module(&m);
    assert!(text.contains("module shifter("));
    assert!(text.contains("input logic [4:0] amt"));
    assert!(text.contains("case (kind)"));
}
