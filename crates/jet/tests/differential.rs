//! Theorem J as a property: jet ≡ Next over random programs, with
//! shrinking via the testkit choice-stream harness (replay failures
//! with the printed `TESTKIT_CASE_SEED` command).
//!
//! The generator deliberately includes stores aimed at the low pages —
//! i.e. *into the code region* — so self-modifying chaos, garbage
//! decoding after clobbered branches, misaligned jump targets and the
//! I/O instructions are all exercised under full (every-retire) shadow
//! comparison.

use ag32::asm::Assembler;
use ag32::{Func, Instr, Reg, Ri, Shift, State};
use testkit::prop::Ctx;

fn arb_image(c: &mut Ctx) -> State {
    let r = Reg::new;
    let mut a = Assembler::new(0);
    // Seed a few registers with small values (addresses land low).
    for i in 1..8u8 {
        a.li(r(i), c.any::<u32>() & 0x3FF);
    }
    let blocks = 1 + c.choose(3) as u32;
    for b in 0..blocks {
        let counter = r(50 + b as u8);
        a.li(counter, 1 + c.choose(3) as u32);
        a.label(format!("block{b}"));
        let body = 1 + c.choose(6);
        for _ in 0..body {
            let w = r(1 + c.choose(20) as u8);
            let x = Ri::Reg(r(1 + c.choose(20) as u8));
            let y = if c.any_bool() {
                Ri::Reg(r(1 + c.choose(20) as u8))
            } else {
                Ri::Imm(c.gen_range(-32i8..=31))
            };
            match c.choose(10) {
                0 => a.shift(Shift::from_bits(c.choose(4) as u32), w, x, y),
                1 => {
                    // Word store, word-aligned, low — often inside code.
                    a.li(r(40), c.choose(0x100) as u32 * 4);
                    a.instr(Instr::StoreMem { a: x, b: Ri::Reg(r(40)) });
                }
                2 => {
                    // Byte store at an arbitrary low address.
                    a.li(r(41), c.choose(0x400) as u32);
                    a.instr(Instr::StoreMemByte { a: x, b: Ri::Reg(r(41)) });
                }
                3 => {
                    a.li(r(42), c.choose(0x400) as u32);
                    a.instr(Instr::LoadMem { w, a: Ri::Reg(r(42)) });
                }
                4 => a.instr(Instr::LoadMemByte { w, a: x }),
                5 => a.instr(Instr::In { w }),
                6 => a.instr(Instr::Out {
                    func: Func::from_bits(c.choose(16) as u32),
                    w,
                    a: x,
                    b: y,
                }),
                7 => a.instr(Instr::Interrupt),
                8 => a.instr(Instr::Accelerator { w, a: x }),
                _ => a.normal(Func::from_bits(c.choose(16) as u32), w, x, y),
            }
        }
        a.normal(Func::Dec, counter, Ri::Imm(0), Ri::Reg(counter));
        a.branch_nonzero_sub(Ri::Reg(counter), Ri::Imm(0), format!("block{b}"), r(60));
    }
    a.halt(r(61));
    let mut s = State::new();
    s.mem.write_bytes(0, &a.assemble().expect("generated program assembles"));
    s.data_in = c.any::<u32>();
    s.io_window = (0x80, 16);
    s
}

testkit::props! {
    /// Theorem J over random (possibly self-modifying) programs under
    /// full shadow: every retire's PC, every register file, final
    /// memory and I/O traces.
    fn jet_equals_next_full_shadow(ctx) {
        let image = arb_image(ctx);
        let fuel = 1 + ctx.choose(300) as u64;
        if let Err(fx) = jet::run_shadow(&image, fuel, 1, 0) {
            panic!("theorem J violated:\n{}", fx.render());
        }
    }

    /// Sampled shadow agrees with full shadow's verdict on clean runs
    /// (cheaper oracle, same pass behaviour).
    fn jet_equals_next_sampled_shadow(ctx) {
        let image = arb_image(ctx);
        let fuel = 1 + ctx.choose(300) as u64;
        if let Err(fx) = jet::run_shadow(&image, fuel, 8, 0) {
            panic!("theorem J violated (sampled):\n{}", fx.render());
        }
    }

    /// The plain (shadow-off) engine reaches the same final state as
    /// the reference run — the configuration the benchmarks use.
    fn jet_final_state_equals_reference(ctx) {
        let image = arb_image(ctx);
        let fuel = 1 + ctx.choose(500) as u64;
        let mut spec = image.clone();
        let spec_n = spec.run(fuel);
        let mut j = jet::Jet::from_state(&image);
        let jet_n = j.run(fuel);
        assert_eq!(jet_n, spec_n, "retire counts");
        let js = j.to_state();
        assert!(js.isa_visible_eq(&spec), "final states differ (jet pc {:#x}, spec pc {:#x})", js.pc, spec.pc);
        assert_eq!(js.stats, spec.stats, "per-opcode retire counters");
    }
}
