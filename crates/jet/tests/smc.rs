//! Self-modifying-code coverage for the translation cache (ISSUE 5
//! satellite): stores into the currently-executing block, into the next
//! block, and into an already-cached distant block must all invalidate
//! correctly — generation-counter bump observed, re-decode verified by
//! the executed (patched) semantics, and every final state equal to the
//! reference interpreter's.

use ag32::{encode, Func, Instr, Reg, Ri, State};
use ag32::asm::Assembler;
use jet::Jet;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// Runs both engines on `image` and asserts ISA-visible equality.
fn assert_equiv(image: &State, fuel: u64) -> (State, Jet) {
    let mut spec = image.clone();
    let spec_n = spec.run(fuel);
    let mut j = Jet::from_state(image);
    let jet_n = j.run(fuel);
    assert_eq!(jet_n, spec_n, "retire counts");
    let js = j.to_state();
    assert!(
        js.isa_visible_eq(&spec),
        "jet pc {:#x} vs spec pc {:#x}; regs differ: {:?}",
        js.pc,
        spec.pc,
        (0..8).map(|i| (js.regs[i], spec.regs[i])).collect::<Vec<_>>()
    );
    (spec, j)
}

#[test]
fn store_into_currently_executing_block() {
    // The store patches an instruction *later in the same block*, before
    // it executes: the engine must abort the block at the store and
    // re-decode from the patched site.
    let patched = encode(Instr::Normal {
        func: Func::Add,
        w: r(3),
        a: Ri::Imm(1),
        b: Ri::Imm(2),
    });
    let mut a = Assembler::new(0);
    a.li(r(1), patched);
    a.la(r(2), "target");
    a.instr(Instr::StoreMem { a: Ri::Reg(r(1)), b: Ri::Reg(r(2)) });
    a.label("target");
    // Placeholder that must NOT execute: r3 := 0.
    a.normal(Func::Snd, r(3), Ri::Imm(0), Ri::Imm(0));
    a.halt(r(61));
    let mut image = State::new();
    image.mem.write_bytes(0, &a.assemble().expect("assembles"));

    let (spec, j) = assert_equiv(&image, 100);
    assert_eq!(spec.regs[3], 3, "reference executes the patched instruction");
    assert_eq!(j.regs[3], 3, "jet executes the patched instruction (re-decode verified)");
    assert!(j.mem().code_write_tick() >= 1, "code-page store was noticed");
}

#[test]
fn store_into_the_next_block() {
    // Block A patches the first instruction of block B (across a jump),
    // twice around a loop. First iteration: B decodes already-patched.
    // Second iteration: B is cached, the store bumps its page
    // generation, and entry must observe the stale snapshot.
    let patched = encode(Instr::Normal {
        func: Func::Add,
        w: r(4),
        a: Ri::Imm(3),
        b: Ri::Reg(r(4)),
    });
    let mut a = Assembler::new(0);
    a.li(r(5), 2); // loop counter
    a.label("loop");
    a.li(r(1), patched);
    a.la(r(2), "nextblk");
    a.instr(Instr::StoreMem { a: Ri::Reg(r(1)), b: Ri::Reg(r(2)) });
    a.jmp("nextblk", r(30), r(31)); // terminator: "nextblk" is the next block
    a.label("nextblk");
    a.normal(Func::Add, r(4), Ri::Imm(1), Ri::Reg(r(4))); // original: +1; patched: +3
    a.normal(Func::Dec, r(5), Ri::Imm(0), Ri::Reg(r(5)));
    a.branch_nonzero_sub(Ri::Reg(r(5)), Ri::Imm(0), "loop", r(60));
    a.halt(r(61));
    let mut image = State::new();
    image.mem.write_bytes(0, &a.assemble().expect("assembles"));

    let (spec, j) = assert_equiv(&image, 1_000);
    assert_eq!(spec.regs[4], 6, "both iterations run the patched +3");
    assert_eq!(j.regs[4], 6);
    let c = j.counters();
    assert!(
        c.code_invalidations >= 1 && c.redecodes >= 1,
        "cached next block must be invalidated and re-decoded: {c:?}"
    );
}

#[test]
fn store_into_already_cached_distant_block() {
    // A subroutine on a distant page is called (and cached), patched
    // from the main block, then called again: the second entry must see
    // a stale generation and re-decode.
    const SUB: u32 = 0x2000;
    let patched = encode(Instr::Normal {
        func: Func::Add,
        w: r(7),
        a: Ri::Imm(5),
        b: Ri::Reg(r(7)),
    });

    let mut main = Assembler::new(0);
    main.li(r(20), SUB);
    main.instr(Instr::Jump { func: Func::Snd, w: r(21), a: Ri::Reg(r(20)) }); // call 1
    main.li(r(1), patched);
    main.li(r(2), SUB);
    main.instr(Instr::StoreMem { a: Ri::Reg(r(1)), b: Ri::Reg(r(2)) }); // patch sub
    main.instr(Instr::Jump { func: Func::Snd, w: r(21), a: Ri::Reg(r(20)) }); // call 2
    main.halt(r(61));

    let mut sub = Assembler::new(SUB);
    sub.normal(Func::Add, r(7), Ri::Imm(1), Ri::Reg(r(7))); // original: +1
    sub.ret(r(21), r(22));

    // The subroutine does not return to a fixed address (two call
    // sites), so the reference and jet must agree on the link-register
    // plumbing too.
    let mut image = State::new();
    image.mem.write_bytes(0, &main.assemble().expect("main assembles"));
    image.mem.write_bytes(SUB, &sub.assemble().expect("sub assembles"));

    let (spec, j) = assert_equiv(&image, 1_000);
    assert_eq!(spec.regs[7], 6, "call1 runs +1, call2 runs patched +5");
    assert_eq!(j.regs[7], 6);
    let c = j.counters();
    assert!(c.code_invalidations >= 1, "distant cached block invalidated: {c:?}");
    let sub_page = j.mem().flat_page_of(SUB).expect("sub page is mirrored");
    assert!(j.mem().page_gen(sub_page) >= 1, "generation-counter bump observed");
}

#[test]
fn patching_with_identical_bytes_still_invalidates() {
    // Generations count *stores*, not content changes: rewriting the
    // same word must still bump (conservative, always sound).
    let mut a = Assembler::new(0);
    a.li(r(5), 2);
    a.label("loop");
    a.la(r(2), "site");
    a.label("site");
    a.normal(Func::Add, r(4), Ri::Imm(1), Ri::Reg(r(4)));
    let site_word = encode(Instr::Normal {
        func: Func::Add,
        w: r(4),
        a: Ri::Imm(1),
        b: Ri::Reg(r(4)),
    });
    a.li(r(1), site_word);
    a.instr(Instr::StoreMem { a: Ri::Reg(r(1)), b: Ri::Reg(r(2)) });
    a.normal(Func::Dec, r(5), Ri::Imm(0), Ri::Reg(r(5)));
    a.branch_nonzero_sub(Ri::Reg(r(5)), Ri::Imm(0), "loop", r(60));
    a.halt(r(61));
    let mut image = State::new();
    image.mem.write_bytes(0, &a.assemble().expect("assembles"));

    let (spec, j) = assert_equiv(&image, 1_000);
    assert_eq!(spec.regs[4], 2);
    let c = j.counters();
    assert!(c.code_invalidations >= 1, "same-byte store still invalidates: {c:?}");
    assert!(j.mem().code_write_tick() >= 2);
}
