//! Shadow mode: theorem J as an executable obligation.
//!
//! [`run_shadow`] runs the reference interpreter (`ag32::State::next`)
//! and the [`Jet`] engine in lockstep over the same image. The PC is
//! compared after *every* retired instruction; the full architectural
//! register file, flags and port state every `sample` retires
//! (`sample == 1` is full shadow); and at the end of the run — halt,
//! wedge or fuel exhaustion — the complete states including memory and
//! the I/O-event traces must agree.
//!
//! On the first divergence the checker stops and renders an
//! [`obs::Forensics`] report naming the divergent retire index, every
//! differing field with both values, and the last retires on each side
//! — the same report shape the ISA↔RTL lockstep (t9) emits, so triage
//! tooling reads both uniformly.

use std::collections::VecDeque;

use ag32::{Instr, State};
use obs::{Forensics, RegDelta};

use crate::engine::Jet;

/// How many retires each side keeps for the forensics tail.
const TAIL: usize = 8;

/// Statistics from a clean shadow run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShadowReport {
    /// Instructions retired (identically on both sides).
    pub retired: u64,
    /// How many full register-file comparisons were performed.
    pub full_compares: u64,
}

fn hex(v: u32) -> String {
    format!("{v:#010x}")
}

fn tail_line(seq: u64, pc: u32, instr: &Instr) -> String {
    format!("#{seq} {} {instr}", hex(pc))
}

fn push_tail(tail: &mut VecDeque<String>, line: String) {
    if tail.len() == TAIL {
        tail.pop_front();
    }
    tail.push_back(line);
}

/// Compares registers, flags and ports (not memory); returns deltas.
fn arch_deltas(spec: &State, jet: &Jet) -> Vec<RegDelta> {
    let mut deltas = Vec::new();
    let mut push = |field: &str, s: String, i: String| {
        deltas.push(RegDelta { field: field.to_string(), spec: s, impl_: i });
    };
    if spec.pc != jet.pc {
        push("pc", hex(spec.pc), hex(jet.pc));
    }
    for r in 0..ag32::NUM_REGS {
        if spec.regs[r] != jet.regs[r] {
            push(&format!("r{r}"), hex(spec.regs[r]), hex(jet.regs[r]));
        }
    }
    if spec.carry != jet.carry {
        push("carry", spec.carry.to_string(), jet.carry.to_string());
    }
    if spec.overflow != jet.overflow {
        push("overflow", spec.overflow.to_string(), jet.overflow.to_string());
    }
    if spec.data_out != jet.data_out {
        push("data_out", hex(spec.data_out), hex(jet.data_out));
    }
    if spec.io_events.len() != jet.io_events.len() {
        push(
            "io_events.len",
            spec.io_events.len().to_string(),
            jet.io_events.len().to_string(),
        );
    }
    deltas
}

/// First differing memory byte between two reference memories, if any.
fn first_mem_delta(spec: &ag32::Memory, jet: &ag32::Memory) -> Option<RegDelta> {
    let mut ids: Vec<u32> = spec.resident_page_ids();
    for id in jet.resident_page_ids() {
        if !ids.contains(&id) {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    let page = ag32::Memory::PAGE_SIZE as u32;
    for id in ids {
        let base = id << ag32::Memory::PAGE_SHIFT;
        for off in 0..page {
            let addr = base.wrapping_add(off);
            let (s, j) = (spec.read_byte(addr), jet.read_byte(addr));
            if s != j {
                return Some(RegDelta {
                    field: format!("mem[{:#010x}]", addr),
                    spec: format!("{s:#04x}"),
                    impl_: format!("{j:#04x}"),
                });
            }
        }
    }
    None
}

/// A shadow divergence together with the last good checkpoint before
/// it — the raw material for checkpoint-anchored triage: replay the
/// divergence from `anchor` (a deep copy of the reference state,
/// correct by definition of the lockstep) instead of from boot.
#[derive(Debug)]
pub struct AnchoredDivergence {
    /// The forensics report; `replay_anchor` is set when an anchor was
    /// captured before the divergence.
    pub forensics: Box<Forensics>,
    /// Reference state at the last checkpoint boundary, `None` when the
    /// divergence hit before the first boundary.
    pub anchor: Option<Box<State>>,
    /// Retire index (relative to this shadow run) the anchor was
    /// captured at; `0` means boot.
    pub anchor_retired: u64,
}

struct Shadow {
    spec: State,
    jet: Jet,
    spec_tail: VecDeque<String>,
    jet_tail: VecDeque<String>,
    retired: u64,
    full_compares: u64,
    anchor: Option<Box<State>>,
    anchor_retired: u64,
}

impl Shadow {
    fn forensics(&mut self, deltas: Vec<RegDelta>, note: Option<String>) -> AnchoredDivergence {
        let mut fx = Forensics::new("theorem J: jet \u{2261} Next", "isa", "jet");
        fx.divergent_step = Some(self.retired);
        fx.deltas = deltas;
        fx.spec_tail = self.spec_tail.iter().cloned().collect();
        fx.impl_tail = self.jet_tail.iter().cloned().collect();
        if let Some(n) = note {
            fx.notes.push(n);
        }
        if self.anchor.is_some() {
            fx.replay_anchor = Some(self.anchor_retired);
        }
        AnchoredDivergence {
            forensics: Box::new(fx),
            anchor: self.anchor.take(),
            anchor_retired: self.anchor_retired,
        }
    }
}

/// Runs theorem J over `image` for up to `fuel` instructions.
///
/// `sample` controls full architectural comparison frequency: `1`
/// compares the whole register file after every retire (full shadow);
/// `N > 1` compares every N retires (the PC is still compared on every
/// retire); `0` compares only at the end. Memory and I/O traces are
/// always compared at the end of the run.
///
/// `alu_fault_xor` is forwarded to [`Jet::alu_fault_xor`] — pass `0`
/// for a real check; tests pass a single bit to prove the oracle
/// catches injected executor bugs.
///
/// # Errors
///
/// The first divergence, as a rendered-ready [`Forensics`] report.
pub fn run_shadow(
    image: &State,
    fuel: u64,
    sample: u64,
    alu_fault_xor: u32,
) -> Result<ShadowReport, Box<Forensics>> {
    run_shadow_anchored(image, fuel, sample, alu_fault_xor, 0).map_err(|d| d.forensics)
}

/// [`run_shadow`] with checkpoint anchoring: every `checkpoint_every`
/// retires (0 = never) the reference state is cloned as the current
/// anchor, and a divergence returns that last good anchor alongside the
/// forensics so triage can replay `divergent_step − anchor_retired`
/// instructions from the checkpoint instead of `divergent_step` from
/// boot. The anchor is the *reference* side, which the lockstep had
/// verified up to that boundary.
///
/// # Errors
///
/// The first divergence, with the last checkpoint anchor attached.
pub fn run_shadow_anchored(
    image: &State,
    fuel: u64,
    sample: u64,
    alu_fault_xor: u32,
    checkpoint_every: u64,
) -> Result<ShadowReport, AnchoredDivergence> {
    let mut sh = Shadow {
        spec: image.clone(),
        jet: Jet::from_state(image),
        spec_tail: VecDeque::new(),
        jet_tail: VecDeque::new(),
        retired: 0,
        full_compares: 0,
        anchor: None,
        anchor_retired: 0,
    };
    sh.jet.alu_fault_xor = alu_fault_xor;

    while sh.retired < fuel {
        let spec_stops =
            sh.spec.is_halted() || sh.spec.current_instr() == ag32::Instr::Reserved;
        if spec_stops {
            let jet_retired = sh.jet.run(1);
            if jet_retired != 0 {
                return Err(sh.forensics(
                    arch_deltas(&sh.spec, &sh.jet),
                    Some(format!(
                        "isa halted at pc {} but jet retired an instruction",
                        hex(sh.spec.pc)
                    )),
                ));
            }
            break;
        }
        push_tail(
            &mut sh.spec_tail,
            tail_line(sh.retired, sh.spec.pc, &sh.spec.current_instr()),
        );
        push_tail(&mut sh.jet_tail, tail_line(sh.retired, sh.jet.pc, &sh.jet.fetch_instr()));
        sh.spec.next();
        let jet_retired = sh.jet.run(1);
        if jet_retired == 0 {
            return Err(sh.forensics(
                arch_deltas(&sh.spec, &sh.jet),
                Some(format!("jet halted at pc {} but isa retired", hex(sh.jet.pc))),
            ));
        }
        sh.retired += 1;
        if sh.jet.pc != sh.spec.pc {
            return Err(sh.forensics(arch_deltas(&sh.spec, &sh.jet), None));
        }
        if sample > 0 && sh.retired % sample == 0 {
            sh.full_compares += 1;
            let deltas = arch_deltas(&sh.spec, &sh.jet);
            if !deltas.is_empty() {
                return Err(sh.forensics(deltas, None));
            }
        }
        // Anchor only after this retire's comparisons all passed: the
        // clone is a *verified-good* reference state.
        if checkpoint_every > 0 && sh.retired % checkpoint_every == 0 {
            sh.anchor = Some(Box::new(sh.spec.clone()));
            sh.anchor_retired = sh.retired;
        }
    }

    // End of run: full architectural + memory + I/O-trace comparison.
    sh.full_compares += 1;
    let jet_state = sh.jet.to_state();
    let mut deltas = arch_deltas(&sh.spec, &sh.jet);
    if sh.spec.io_events != jet_state.io_events {
        deltas.push(RegDelta {
            field: "io_events".to_string(),
            spec: format!("{} events", sh.spec.io_events.len()),
            impl_: format!("{} events", jet_state.io_events.len()),
        });
    }
    if sh.spec.mem != jet_state.mem {
        deltas.push(first_mem_delta(&sh.spec.mem, &jet_state.mem).unwrap_or(RegDelta {
            field: "mem".to_string(),
            spec: "(differs)".to_string(),
            impl_: "(differs)".to_string(),
        }));
    }
    if !deltas.is_empty() {
        return Err(sh.forensics(deltas, Some("final-state comparison".to_string())));
    }
    Ok(ShadowReport { retired: sh.retired, full_compares: sh.full_compares })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag32::asm::Assembler;
    use ag32::{Func, Reg, Ri};

    fn looped_image() -> State {
        let mut a = Assembler::new(0);
        let r1 = Reg::new(1);
        a.li(r1, 0);
        a.label("loop");
        a.normal(Func::Add, r1, Ri::Reg(r1), Ri::Imm(1));
        a.li(Reg::new(2), 25);
        a.branch_nonzero_sub(Ri::Reg(r1), Ri::Reg(Reg::new(2)), "loop", Reg::new(60));
        a.halt(Reg::new(61));
        let mut s = State::new();
        s.mem.write_bytes(0, &a.assemble().expect("assembles"));
        s
    }

    #[test]
    fn clean_program_passes_full_shadow() {
        let report = run_shadow(&looped_image(), 10_000, 1, 0).expect("theorem J holds");
        assert!(report.retired > 50);
        assert_eq!(report.full_compares, report.retired + 1);
    }

    #[test]
    fn sampled_shadow_still_checks_every_pc() {
        let report = run_shadow(&looped_image(), 10_000, 16, 0).expect("theorem J holds");
        assert!(report.full_compares < report.retired);
    }

    #[test]
    fn injected_fault_is_caught_with_divergent_retire_named() {
        let fx = run_shadow(&looped_image(), 10_000, 1, 1 << 7)
            .expect_err("a one-bit ALU fault must be caught");
        assert!(fx.divergent_step.is_some(), "forensics names the divergent retire");
        assert!(!fx.deltas.is_empty());
        let text = fx.render();
        assert!(text.contains("divergent step"), "{text}");
        assert!(text.contains("jet"), "{text}");
    }

    /// A late divergence (the injected fault only bites `Normal` ALU
    /// ops, and the program's first ALU op sits behind a prefix of
    /// `li`s spanning two checkpoint boundaries) hands back a
    /// verified-good reference state from which the divergence replays
    /// in far fewer retires than from boot.
    #[test]
    fn anchored_divergence_carries_a_replayable_checkpoint() {
        let mut a = Assembler::new(0);
        for i in 1..=10 {
            a.li(Reg::new(i), u32::from(i)); // LoadConstant: unaffected by the ALU fault
        }
        a.normal(Func::Add, Reg::new(11), Ri::Reg(Reg::new(1)), Ri::Reg(Reg::new(2)));
        a.halt(Reg::new(61));
        let mut image = State::new();
        image.mem.write_bytes(0, &a.assemble().expect("assembles"));

        let fault = 1 << 4;
        let div = run_shadow_anchored(&image, 10_000, 1, fault, 4)
            .expect_err("the ALU fault must be caught");
        let step = div.forensics.divergent_step.expect("divergent retire named");
        let anchor = div.anchor.as_deref().expect("divergence is past the first boundary");
        assert_eq!(div.forensics.replay_anchor, Some(div.anchor_retired));
        assert!(div.anchor_retired > 0 && div.anchor_retired <= step);
        assert_eq!(anchor.instructions_retired, div.anchor_retired);

        // Replaying from the anchor with the same fault reproduces the
        // divergence within the remaining fuel — and without the fault
        // the anchor is a clean state (theorem J holds from there).
        let remaining = step - div.anchor_retired + 8;
        run_shadow(anchor, remaining, 1, fault)
            .expect_err("replay from the anchor reproduces the divergence");
        run_shadow(anchor, 10_000, 1, 0).expect("anchor itself is a good state");
    }

    /// An early divergence (before the first checkpoint boundary)
    /// reports no anchor rather than a stale one.
    #[test]
    fn divergence_before_first_boundary_has_no_anchor() {
        let div = run_shadow_anchored(&looped_image(), 10_000, 1, 1, 1_000)
            .expect_err("an always-on ALU fault diverges immediately");
        assert!(div.anchor.is_none());
        assert_eq!(div.forensics.replay_anchor, None);
    }
}
