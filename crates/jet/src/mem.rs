//! Hybrid memory: a flat resident mirror of the image region with
//! single-lookup fast paths, backed by the sparse reference
//! [`ag32::Memory`] everywhere else.
//!
//! The image layout (Figure 2 of the paper) places code, data and the
//! memory-mapped I/O regions in one low, dense span; the heap and stack
//! grow inside it. [`JetMemory`] mirrors that span — every page resident
//! at construction time, capped at [`MAX_FLAT_BYTES`] — into a single
//! `Vec<u8>`, so the common case of a word access is one bounds check
//! and one unaligned load instead of a `HashMap` page probe. Accesses
//! outside the mirror (sparse scratch writes from generated campaign
//! programs, the 4 GiB wrap cases) are routed, *per byte*, to a clone of
//! the reference memory, which keeps the semantics identical by
//! construction.
//!
//! Self-modifying-code support lives here too: pages of the mirror that
//! cached blocks were decoded from are flagged [`code`](JetMemory::flag_code_pages),
//! and every store into a flagged page bumps that page's generation
//! counter plus a global write tick. The engine snapshots generations at
//! decode time and re-validates on block entry; the tick lets it notice
//! a store into the *currently executing* block without re-checking
//! generations after every instruction kind.

use ag32::Memory;

/// Cap on the flat mirror: 64 MiB (16 Ki pages). Larger resident spans
/// keep the low pages mirrored and serve the rest from the sparse side.
pub const MAX_FLAT_BYTES: usize = 64 << 20;

const PAGE_SIZE: usize = Memory::PAGE_SIZE;
const PAGE_SHIFT: u32 = Memory::PAGE_SHIFT;

/// The hybrid flat/sparse memory used by the [`Jet`](crate::Jet) engine.
#[derive(Clone)]
pub struct JetMemory {
    /// Byte address of the first mirrored byte (page-aligned).
    flat_base: u32,
    /// The mirror; length is a multiple of the page size.
    flat: Vec<u8>,
    /// Per mirrored page: does any cached block decode from it?
    code_page: Vec<bool>,
    /// Per mirrored page: generation, bumped on each store into a
    /// code-flagged page.
    page_gen: Vec<u32>,
    /// Bumped on every store into any code-flagged page.
    code_write_tick: u64,
    /// Reference sparse memory for everything outside the mirror.
    outside: Memory,
}

impl JetMemory {
    /// Builds the mirror over the contiguous page span covering `mem`'s
    /// resident pages (capped at [`MAX_FLAT_BYTES`]) and keeps a sparse
    /// clone for the rest.
    #[must_use]
    pub fn new(mem: &Memory) -> Self {
        let ids = mem.resident_page_ids();
        let (flat_base, n_pages) = match (ids.first(), ids.last()) {
            (Some(&lo), Some(&hi)) => {
                let max_pages = (MAX_FLAT_BYTES >> PAGE_SHIFT) as u32;
                let span = (hi - lo + 1).min(max_pages);
                (lo << PAGE_SHIFT, span as usize)
            }
            _ => (0, 0),
        };
        let mut flat = vec![0u8; n_pages * PAGE_SIZE];
        for &id in &ids {
            let rel = (id as u64) - u64::from(flat_base >> PAGE_SHIFT);
            if (rel as usize) < n_pages {
                let off = rel as usize * PAGE_SIZE;
                let bytes = mem.read_bytes(id << PAGE_SHIFT, PAGE_SIZE as u32);
                flat[off..off + PAGE_SIZE].copy_from_slice(&bytes);
            }
        }
        JetMemory {
            flat_base,
            flat,
            code_page: vec![false; n_pages],
            page_gen: vec![0; n_pages],
            code_write_tick: 0,
            outside: mem.clone(),
        }
    }

    /// The mirrored page index of `addr`, when `addr` is in the mirror.
    #[inline]
    #[must_use]
    pub fn flat_page_of(&self, addr: u32) -> Option<usize> {
        let rel = addr.wrapping_sub(self.flat_base) as usize;
        if rel < self.flat.len() {
            Some(rel >> PAGE_SHIFT)
        } else {
            None
        }
    }

    /// Whether a whole word at `addr` lies inside the mirror.
    #[inline]
    #[must_use]
    pub fn flat_contains_word(&self, addr: u32) -> bool {
        let rel = addr.wrapping_sub(self.flat_base) as usize;
        rel < self.flat.len() && self.flat.len() - rel >= 4
    }

    /// Flags every mirrored page in `[first, last]` (page indices) as
    /// holding decoded code. Flagging does not bump generations.
    pub fn flag_code_pages(&mut self, first: usize, last: usize) {
        for p in first..=last.min(self.code_page.len().saturating_sub(1)) {
            self.code_page[p] = true;
        }
    }

    /// The generation counter of mirrored page `page`.
    #[must_use]
    pub fn page_gen(&self, page: usize) -> u32 {
        self.page_gen.get(page).copied().unwrap_or(0)
    }

    /// Monotone count of stores into code-flagged pages.
    #[must_use]
    pub fn code_write_tick(&self) -> u64 {
        self.code_write_tick
    }

    #[inline]
    fn note_code_write(&mut self, rel: usize) {
        let p = rel >> PAGE_SHIFT;
        if self.code_page[p] {
            self.page_gen[p] = self.page_gen[p].wrapping_add(1);
            self.code_write_tick += 1;
        }
    }

    /// Reads one byte (mirror fast path, sparse fallback).
    #[inline]
    #[must_use]
    pub fn read_byte(&self, addr: u32) -> u8 {
        let rel = addr.wrapping_sub(self.flat_base) as usize;
        if rel < self.flat.len() {
            self.flat[rel]
        } else {
            self.outside.read_byte(addr)
        }
    }

    /// Writes one byte, bumping SMC bookkeeping when the byte lands in a
    /// code-flagged mirrored page.
    #[inline]
    pub fn write_byte(&mut self, addr: u32, value: u8) {
        let rel = addr.wrapping_sub(self.flat_base) as usize;
        if rel < self.flat.len() {
            self.flat[rel] = value;
            self.note_code_write(rel);
        } else {
            self.outside.write_byte(addr, value);
        }
    }

    /// Reads a little-endian word. Word accesses fully inside the mirror
    /// take the single-lookup fast path; everything else (mirror edges,
    /// 4 GiB wrap, sparse region) decomposes into byte reads, which match
    /// the reference semantics address by address.
    #[inline]
    #[must_use]
    pub fn read_word(&self, addr: u32) -> u32 {
        let rel = addr.wrapping_sub(self.flat_base) as usize;
        if rel < self.flat.len() && self.flat.len() - rel >= 4 {
            return u32::from_le_bytes(self.flat[rel..rel + 4].try_into().expect("4 bytes"));
        }
        u32::from_le_bytes([
            self.read_byte(addr),
            self.read_byte(addr.wrapping_add(1)),
            self.read_byte(addr.wrapping_add(2)),
            self.read_byte(addr.wrapping_add(3)),
        ])
    }

    /// Writes a little-endian word (fast path mirrors [`JetMemory::read_word`]).
    #[inline]
    pub fn write_word(&mut self, addr: u32, value: u32) {
        let rel = addr.wrapping_sub(self.flat_base) as usize;
        if rel < self.flat.len() && self.flat.len() - rel >= 4 {
            self.flat[rel..rel + 4].copy_from_slice(&value.to_le_bytes());
            self.note_code_write(rel);
            // A word is 4 bytes inside one 4 KiB page only when aligned;
            // the engine always aligns word accesses, but a misaligned
            // store could touch the next page too.
            let last = rel + 3;
            if last >> PAGE_SHIFT != rel >> PAGE_SHIFT {
                self.note_code_write(last);
            }
            return;
        }
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.write_byte(addr.wrapping_add(i as u32), b);
        }
    }

    /// Reads `len` bytes starting at `addr` (used by `Interrupt` to
    /// snapshot the I/O window).
    #[must_use]
    pub fn read_bytes(&self, addr: u32, len: u32) -> Vec<u8> {
        (0..len).map(|i| self.read_byte(addr.wrapping_add(i))).collect()
    }

    /// Reconstructs a reference [`Memory`] with the mirror's contents
    /// written back — the final-state view the shadow checker and the
    /// engine's [`to_state`](crate::Jet::to_state) compare against.
    #[must_use]
    pub fn to_memory(&self) -> Memory {
        let mut out = self.outside.clone();
        let resident: std::collections::HashSet<u32> =
            self.outside.resident_page_ids().into_iter().collect();
        for p in 0..self.code_page.len() {
            let off = p * PAGE_SIZE;
            let bytes = &self.flat[off..off + PAGE_SIZE];
            let id = (self.flat_base >> PAGE_SHIFT) + p as u32;
            // Skip pages that are all-zero on both sides: reference
            // memory identifies zero pages with absent ones.
            if resident.contains(&id) || bytes.iter().any(|&b| b != 0) {
                out.write_bytes(id << PAGE_SHIFT, bytes);
            }
        }
        out
    }
}

impl std::fmt::Debug for JetMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JetMemory")
            .field("flat_base", &self.flat_base)
            .field("flat_len", &self.flat.len())
            .field("code_write_tick", &self.code_write_tick)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_resident_span_and_routes_outside() {
        let mut m = Memory::new();
        m.write_word(0x1000, 0xDEAD_BEEF);
        m.write_word(0x3FFC, 0x1234_5678);
        let mut jm = JetMemory::new(&m);
        assert_eq!(jm.read_word(0x1000), 0xDEAD_BEEF);
        assert_eq!(jm.read_word(0x3FFC), 0x1234_5678);
        // Outside the mirror: sparse semantics, including 4 GiB wrap.
        assert_eq!(jm.read_word(u32::MAX - 1), 0);
        jm.write_word(u32::MAX - 1, 0xAABB_CCDD);
        assert_eq!(jm.read_word(u32::MAX - 1), 0xAABB_CCDD);
        assert_eq!(jm.read_byte(0), 0xBB, "wrapped high byte lands at 0, outside mirror");
        let back = jm.to_memory();
        assert_eq!(back.read_word(0x1000), 0xDEAD_BEEF);
        assert_eq!(back.read_word(u32::MAX - 1), 0xAABB_CCDD);
    }

    #[test]
    fn code_page_writes_bump_generation_and_tick() {
        let mut m = Memory::new();
        m.write_word(0x1000, 1);
        let mut jm = JetMemory::new(&m);
        let p = jm.flat_page_of(0x1000).expect("mirrored");
        let g0 = jm.page_gen(p);
        jm.write_word(0x1004, 7);
        assert_eq!(jm.page_gen(p), g0, "no bump before the page is flagged");
        jm.flag_code_pages(p, p);
        jm.write_word(0x1008, 7);
        assert_eq!(jm.page_gen(p), g0.wrapping_add(1));
        assert_eq!(jm.code_write_tick(), 1);
        jm.write_byte(0x1009, 1);
        assert_eq!(jm.code_write_tick(), 2);
    }

    #[test]
    fn writeback_matches_reference_semantics() {
        let mut m = Memory::new();
        m.write_word(0x2000, 0xFFFF_FFFF);
        let mut jm = JetMemory::new(&m);
        jm.write_word(0x2000, 0); // zero out the only nonzero word
        let back = jm.to_memory();
        assert_eq!(back, Memory::new(), "zeroed page equals absent page");
    }
}
