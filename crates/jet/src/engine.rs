//! The translation-cache engine proper.
//!
//! Execution walks a cache of decoded [`Block`]s keyed by fetch
//! address. Entering a block costs one `HashMap` probe (or nothing,
//! when the previous block's monomorphic successor cache hits) plus a
//! two-compare generation check; executing an instruction is one match
//! on a pre-extracted [`Op`] with operands already sign-extended,
//! negated and shifted. The arithmetic itself is [`ag32::alu`] /
//! [`ag32::shifter`] — the *same* functions `Next` uses, so the engine
//! cannot diverge from the reference on flag or ALU semantics by
//! construction; what remains to check differentially is everything
//! else (dispatch, memory routing, invalidation, halt/fuel accounting),
//! which is exactly what shadow mode and the `t-jet` campaign target do.
//!
//! ## Self-modifying code
//!
//! Pages that blocks decode from are flagged in the [`JetMemory`];
//! every store into a flagged page bumps that page's generation and a
//! global tick. Blocks snapshot their pages' generations at decode
//! time; block *entry* re-validates the snapshots (stale → re-decode in
//! place, so successor caches keep pointing at the right arena slot),
//! and block *execution* watches the global tick after every retired
//! instruction so a store into the currently-running block aborts it
//! before a stale op can execute.

use std::collections::HashMap;

use ag32::{alu, decode, shifter, ExecStats, Func, Instr, IoEvent, Opcode, State, NUM_REGS};

use crate::block::{lower, Block, Op, Src, BLOCK_CAP};
use crate::mem::JetMemory;

/// What one lowered op did to control flow. Retiring arms bump the
/// retire counters inside [`Jet::exec_op`] itself (the opcode index is
/// a constant in each arm, so the accounting costs two increments, not
/// a second dispatch).
enum OpExit {
    /// Fell through to the next op (`pc += 4`).
    Fall,
    /// Fell through, and the op was a store — the block loop must check
    /// the code-write tick before executing another cached op.
    FallStore,
    /// Transferred control (`pc` set to the target); retires.
    Branch,
    /// The op is a halt instruction; nothing executed, nothing retired.
    Halted,
    /// The op is `Reserved`; the machine is wedged, nothing retired.
    Wedged,
}

/// Why a block execution stopped.
enum BlockExit {
    /// The terminator executed and set the PC.
    Branch,
    /// The block ended without a terminator (cap or mirror boundary);
    /// the PC fell through past the last op.
    Fallthrough,
    /// The next op is a halt instruction.
    Halted,
    /// The next op is `Reserved`.
    Wedged,
    /// The fuel budget ran out mid-block.
    Budget,
    /// A store hit a code page; cached ops may be stale.
    SelfModified,
}

/// Execution counters, for tests and engine diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JetCounters {
    /// Blocks decoded for the first time.
    pub blocks_decoded: u64,
    /// Blocks re-decoded after invalidation.
    pub redecodes: u64,
    /// Stale generation snapshots observed on block entry.
    pub code_invalidations: u64,
    /// Block transitions served by the successor cache.
    pub chain_hits: u64,
    /// Instructions executed outside the block path (misaligned PC or
    /// PC outside the flat mirror).
    pub slow_steps: u64,
}

/// The translation-cache Silver engine. Architectural fields mirror
/// [`ag32::State`]; [`Jet::to_state`] converts back for comparison.
pub struct Jet {
    /// Program counter.
    pub pc: u32,
    /// The 64 general-purpose registers.
    pub regs: [u32; NUM_REGS],
    /// Carry flag.
    pub carry: bool,
    /// Overflow flag.
    pub overflow: bool,
    /// Input port.
    pub data_in: u32,
    /// Output port.
    pub data_out: u32,
    /// I/O-event trace.
    pub io_events: Vec<IoEvent>,
    /// `(base, len)` of the `Interrupt` snapshot window.
    pub io_window: (u32, u32),
    /// The accelerator function.
    pub accel: fn(u32) -> u32,
    /// Instructions retired.
    pub instructions_retired: u64,
    /// Per-opcode retire counters (same meaning as on `State`).
    pub stats: ExecStats,
    /// Fault injection: XORed into every `Normal` ALU result. `0` in
    /// real use; the engine-equivalence tests set a single bit to
    /// verify the shadow oracle actually catches executor bugs.
    pub alu_fault_xor: u32,
    mem: JetMemory,
    map: HashMap<u32, u32>,
    arena: Vec<Block>,
    counters: JetCounters,
}

impl Jet {
    /// Builds an engine over a loaded image.
    #[must_use]
    pub fn from_state(s: &State) -> Self {
        Jet {
            pc: s.pc,
            regs: s.regs,
            carry: s.carry,
            overflow: s.overflow,
            data_in: s.data_in,
            data_out: s.data_out,
            io_events: s.io_events.clone(),
            io_window: s.io_window,
            accel: s.accel,
            instructions_retired: s.instructions_retired,
            stats: s.stats.clone(),
            alu_fault_xor: 0,
            mem: JetMemory::new(&s.mem),
            map: HashMap::new(),
            arena: Vec::new(),
            counters: JetCounters::default(),
        }
    }

    /// The architectural state as a reference [`State`] (memory written
    /// back). This is the view theorem J compares.
    #[must_use]
    pub fn to_state(&self) -> State {
        State {
            pc: self.pc,
            regs: self.regs,
            carry: self.carry,
            overflow: self.overflow,
            mem: self.mem.to_memory(),
            data_in: self.data_in,
            data_out: self.data_out,
            io_events: self.io_events.clone(),
            io_window: self.io_window,
            accel: self.accel,
            instructions_retired: self.instructions_retired,
            stats: self.stats.clone(),
        }
    }

    /// Consuming variant of [`Jet::to_state`] (moves the event trace
    /// instead of cloning it).
    #[must_use]
    pub fn into_state(mut self) -> State {
        let events = std::mem::take(&mut self.io_events);
        let mut s = self.to_state();
        s.io_events = events;
        s
    }

    /// The hybrid memory (tests observe generation counters through it).
    #[must_use]
    pub fn mem(&self) -> &JetMemory {
        &self.mem
    }

    /// Execution counters.
    #[must_use]
    pub fn counters(&self) -> JetCounters {
        self.counters
    }

    /// The instruction the PC points at (word-granular fetch, like
    /// [`ag32::State::current_instr`]).
    #[must_use]
    pub fn fetch_instr(&self) -> Instr {
        decode(self.mem.read_word(self.pc & !3))
    }

    /// Mirrors [`ag32::State::is_halted`] over the jet memory.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        match self.fetch_instr() {
            Instr::Jump { func: Func::Snd, a, .. } => self.ri(a) == self.pc,
            Instr::Jump { func: Func::Add, a, .. } => self.ri(a) == 0,
            Instr::Reserved => true,
            _ => false,
        }
    }

    fn ri(&self, ri: ag32::Ri) -> u32 {
        match ri {
            ag32::Ri::Reg(r) => self.regs[r.index()],
            ag32::Ri::Imm(v) => v as i32 as u32,
        }
    }

    #[inline]
    fn src(&self, s: Src) -> u32 {
        match s {
            Src::R(r) => self.regs[r as usize],
            Src::I(v) => v,
        }
    }

    #[inline]
    fn flags(&mut self, carry: Option<bool>, overflow: Option<bool>) {
        if let Some(c) = carry {
            self.carry = c;
        }
        if let Some(v) = overflow {
            self.overflow = v;
        }
    }

    /// Per-opcode stat bump for one retired op. `opc` is a constant at
    /// every call site, so the stats index needs no dispatch and no
    /// bounds check. `instructions_retired` is batched by the callers
    /// ([`Jet::exec_block`] adds its loop count once per block exit).
    #[inline]
    fn retired(&mut self, opc: Opcode) {
        self.stats.opcode_retired[opc as usize] += 1;
    }

    /// Executes one lowered op at `pc`, returning the next PC. Mirrors
    /// `ag32::exec::execute` arm for arm, with the reference run loop's
    /// pre-step halt check folded into the `Jump`/`Reserved` arms and
    /// the retire counters bumped inline (see [`OpExit`]). The PC is
    /// threaded through by value so the block loop keeps it in a
    /// register — stores through the mirror would otherwise force the
    /// compiler to conservatively reload it from `self` every op.
    ///
    /// `inline(always)`: this is the interpreter's inner dispatch; left
    /// to its own devices the compiler outlines it (it is large once
    /// [`alu`] is inlined into five arms), which costs an extra call,
    /// an `Op` copy and an `OpExit` round-trip per retired instruction.
    #[inline(always)]
    fn exec_op(&mut self, op: Op, pc: u32) -> (u32, OpExit) {
        match op {
            Op::Normal { func, w, a, b } => {
                let out = alu(func, self.src(a), self.src(b), self.carry, self.overflow);
                self.flags(out.carry, out.overflow);
                self.regs[w as usize] = out.value ^ self.alu_fault_xor;
                self.retired(Opcode::Normal);
                (pc.wrapping_add(4), OpExit::Fall)
            }
            Op::Shift { kind, w, a, b } => {
                self.regs[w as usize] = shifter(kind, self.src(a), self.src(b));
                self.retired(Opcode::Shift);
                (pc.wrapping_add(4), OpExit::Fall)
            }
            Op::StoreMem { a, b } => {
                let addr = self.src(b) & !3;
                let value = self.src(a);
                self.mem.write_word(addr, value);
                self.retired(Opcode::StoreMem);
                (pc.wrapping_add(4), OpExit::FallStore)
            }
            Op::StoreMemByte { a, b } => {
                let addr = self.src(b);
                let value = self.src(a) as u8;
                self.mem.write_byte(addr, value);
                self.retired(Opcode::StoreMemByte);
                (pc.wrapping_add(4), OpExit::FallStore)
            }
            Op::LoadMem { w, a } => {
                let addr = self.src(a) & !3;
                self.regs[w as usize] = self.mem.read_word(addr);
                self.retired(Opcode::LoadMem);
                (pc.wrapping_add(4), OpExit::Fall)
            }
            Op::LoadMemByte { w, a } => {
                let addr = self.src(a);
                self.regs[w as usize] = u32::from(self.mem.read_byte(addr));
                self.retired(Opcode::LoadMemByte);
                (pc.wrapping_add(4), OpExit::Fall)
            }
            Op::In { w } => {
                self.regs[w as usize] = self.data_in;
                self.retired(Opcode::In);
                (pc.wrapping_add(4), OpExit::Fall)
            }
            Op::Out { func, w, a, b } => {
                let out = alu(func, self.src(a), self.src(b), self.carry, self.overflow);
                self.flags(out.carry, out.overflow);
                self.regs[w as usize] = out.value;
                self.data_out = out.value;
                self.retired(Opcode::Out);
                (pc.wrapping_add(4), OpExit::Fall)
            }
            Op::Accel { w, a } => {
                self.regs[w as usize] = (self.accel)(self.src(a));
                self.retired(Opcode::Accelerator);
                (pc.wrapping_add(4), OpExit::Fall)
            }
            Op::Jump { func, w, a } => {
                let av = self.src(a);
                let halted = match func {
                    Func::Snd => av == pc,
                    Func::Add => av == 0,
                    _ => false,
                };
                if halted {
                    return (pc, OpExit::Halted);
                }
                let out = alu(func, pc, av, self.carry, self.overflow);
                self.flags(out.carry, out.overflow);
                self.regs[w as usize] = pc.wrapping_add(4);
                self.retired(Opcode::Jump);
                (out.value, OpExit::Branch)
            }
            Op::JumpIfZero { func, off, a, b } => {
                let out = alu(func, self.src(a), self.src(b), self.carry, self.overflow);
                self.flags(out.carry, out.overflow);
                let o = if out.value == 0 { self.src(off) } else { 4 };
                self.retired(Opcode::JumpIfZero);
                (pc.wrapping_add(o), OpExit::Branch)
            }
            Op::JumpIfNotZero { func, off, a, b } => {
                let out = alu(func, self.src(a), self.src(b), self.carry, self.overflow);
                self.flags(out.carry, out.overflow);
                let o = if out.value != 0 { self.src(off) } else { 4 };
                self.retired(Opcode::JumpIfNotZero);
                (pc.wrapping_add(o), OpExit::Branch)
            }
            Op::LoadConst { w, value } => {
                self.regs[w as usize] = value;
                self.retired(Opcode::LoadConstant);
                (pc.wrapping_add(4), OpExit::Fall)
            }
            Op::LoadUpper { w, mask } => {
                let old = self.regs[w as usize];
                self.regs[w as usize] = mask | (old & 0x7F_FFFF);
                self.retired(Opcode::LoadUpperConstant);
                (pc.wrapping_add(4), OpExit::Fall)
            }
            Op::Interrupt => {
                let (base, len) = self.io_window;
                let window = self.mem.read_bytes(base, len);
                self.io_events.push(IoEvent { data_out: self.data_out, window });
                self.retired(Opcode::Interrupt);
                (pc.wrapping_add(4), OpExit::Fall)
            }
            Op::Reserved => (pc, OpExit::Wedged),
        }
    }

    /// Decodes the block starting at `start` (which must be a
    /// word-aligned mirrored address) and flags its pages as code.
    fn decode_block(&mut self, start: u32) -> Block {
        debug_assert!(start & 3 == 0 && self.mem.flat_contains_word(start));
        let mut ops = Vec::with_capacity(8);
        let mut pc = start;
        while ops.len() < BLOCK_CAP && self.mem.flat_contains_word(pc) {
            let op = lower(decode(self.mem.read_word(pc)));
            let term = op.is_terminator();
            ops.push(op);
            pc = pc.wrapping_add(4);
            if term {
                break;
            }
        }
        let first = self.mem.flat_page_of(start).expect("block start is mirrored");
        let last_addr = start.wrapping_add(ops.len() as u32 * 4).wrapping_sub(1);
        let last = self.mem.flat_page_of(last_addr).unwrap_or(first);
        self.mem.flag_code_pages(first, last);
        Block {
            start,
            ops,
            pages: [
                (first as u32, self.mem.page_gen(first)),
                (last as u32, self.mem.page_gen(last)),
            ],
            succ: None,
        }
    }

    #[inline]
    fn block_valid(&self, idx: u32) -> bool {
        self.arena[idx as usize].valid(|p| self.mem.page_gen(p))
    }

    /// Looks up (or decodes) the block at `pc`, re-validating generation
    /// snapshots and re-decoding *in place* when stale, so arena indices
    /// cached in successor slots stay meaningful.
    fn lookup_or_decode(&mut self, pc: u32) -> u32 {
        if let Some(&idx) = self.map.get(&pc) {
            if !self.block_valid(idx) {
                self.counters.code_invalidations += 1;
                self.counters.redecodes += 1;
                let b = self.decode_block(pc);
                self.arena[idx as usize] = b;
            }
            idx
        } else {
            let b = self.decode_block(pc);
            let idx = u32::try_from(self.arena.len()).expect("arena fits u32");
            self.arena.push(b);
            self.map.insert(pc, idx);
            self.counters.blocks_decoded += 1;
            idx
        }
    }

    /// Executes (a prefix of) block `idx` against the current state.
    /// The caller reads the retire count off `instructions_retired`
    /// (which [`Jet::exec_op`] maintains); only stores pay the
    /// self-modification tick check.
    fn exec_block(&mut self, idx: u32, budget: u64) -> BlockExit {
        let ops = std::mem::take(&mut self.arena[idx as usize].ops);
        let limit = usize::try_from(budget.min(ops.len() as u64)).expect("fits");
        let mut exit = if limit < ops.len() { BlockExit::Budget } else { BlockExit::Fallthrough };
        let tick0 = self.mem.code_write_tick();
        let mut pc = self.pc;
        let mut done = 0u64;
        for &op in &ops[..limit] {
            let (next_pc, oe) = self.exec_op(op, pc);
            pc = next_pc;
            match oe {
                OpExit::Fall => done += 1,
                OpExit::FallStore => {
                    done += 1;
                    if self.mem.code_write_tick() != tick0 {
                        exit = BlockExit::SelfModified;
                        break;
                    }
                }
                OpExit::Branch => {
                    done += 1;
                    exit = BlockExit::Branch;
                    break;
                }
                OpExit::Halted => {
                    exit = BlockExit::Halted;
                    break;
                }
                OpExit::Wedged => {
                    exit = BlockExit::Wedged;
                    break;
                }
            }
        }
        self.pc = pc;
        self.instructions_retired += done;
        self.arena[idx as usize].ops = ops;
        exit
    }

    /// After a block transfers control, resolves the next block —
    /// through the predecessor's monomorphic successor cache when it
    /// hits and is still valid, else the full lookup (updating the
    /// cache). Returns `None` when the new PC leaves the block path.
    fn chain_from(&mut self, from: u32) -> Option<u32> {
        let pc = self.pc;
        if pc & 3 != 0 || !self.mem.flat_contains_word(pc) {
            return None;
        }
        if let Some((expected, sidx)) = self.arena[from as usize].succ {
            if expected == pc && self.block_valid(sidx) {
                self.counters.chain_hits += 1;
                return Some(sidx);
            }
        }
        let sidx = self.lookup_or_decode(pc);
        self.arena[from as usize].succ = Some((pc, sidx));
        Some(sidx)
    }

    /// One fetch–decode–execute step outside the block path (misaligned
    /// PC or PC outside the mirror). Returns `true` when an instruction
    /// retired, `false` on halt/wedge.
    fn step_slow(&mut self) -> bool {
        self.counters.slow_steps += 1;
        let op = lower(decode(self.mem.read_word(self.pc & !3)));
        let (pc, oe) = self.exec_op(op, self.pc);
        self.pc = pc;
        let retired = matches!(oe, OpExit::Fall | OpExit::FallStore | OpExit::Branch);
        self.instructions_retired += u64::from(retired);
        retired
    }

    /// Runs up to `fuel` instructions, stopping early on halt or wedge —
    /// the jet analogue of [`ag32::State::run`]. Returns instructions
    /// retired.
    pub fn run(&mut self, fuel: u64) -> u64 {
        let mut n = 0u64;
        while n < fuel {
            let pc = self.pc;
            if pc & 3 == 0 && self.mem.flat_contains_word(pc) {
                let mut idx = self.lookup_or_decode(pc);
                // Chained inner loop: a `Some` from `chain_from` means
                // the successor's PC is already validated (aligned,
                // mirrored, generation-checked), so block-to-block
                // transfers pay no re-checks until the chain breaks.
                loop {
                    let r0 = self.instructions_retired;
                    let exit = self.exec_block(idx, fuel - n);
                    n += self.instructions_retired - r0;
                    match exit {
                        BlockExit::Branch | BlockExit::Fallthrough => {
                            match self.chain_from(idx) {
                                Some(next) => {
                                    if n >= fuel {
                                        return n;
                                    }
                                    idx = next;
                                }
                                None => break, // PC left the block path.
                            }
                        }
                        BlockExit::Halted | BlockExit::Wedged => return n,
                        // Budget: outer `n < fuel` terminates the run.
                        // SelfModified: re-enter through the validating
                        // lookup so stale ops are re-decoded.
                        BlockExit::Budget | BlockExit::SelfModified => break,
                    }
                }
            } else if self.step_slow() {
                n += 1;
            } else {
                break;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag32::asm::Assembler;
    use ag32::{Reg, Ri};

    fn count_to_ten() -> State {
        let mut a = Assembler::new(0);
        let r1 = Reg::new(1);
        a.li(r1, 0);
        a.label("loop");
        a.normal(Func::Add, r1, Ri::Reg(r1), Ri::Imm(1));
        a.li(Reg::new(2), 10);
        a.branch_nonzero_sub(Ri::Reg(r1), Ri::Reg(Reg::new(2)), "loop", Reg::new(60));
        a.halt(Reg::new(61));
        let code = a.assemble().expect("assembles");
        let mut s = State::new();
        s.mem.write_bytes(0, &code);
        s
    }

    #[test]
    fn matches_reference_on_a_loop() {
        let image = count_to_ten();
        let mut spec = image.clone();
        let spec_n = spec.run(10_000);
        let mut j = Jet::from_state(&image);
        let jet_n = j.run(10_000);
        assert_eq!(jet_n, spec_n);
        let js = j.to_state();
        assert!(js.isa_visible_eq(&spec), "jet {:?} vs spec pc {:#x}", js.pc, spec.pc);
        assert_eq!(js.stats, spec.stats);
        assert!(j.counters().chain_hits > 0, "loop should chain: {:?}", j.counters());
    }

    #[test]
    fn fuel_is_exact_even_mid_block() {
        let image = count_to_ten();
        for fuel in 0..40 {
            let mut spec = image.clone();
            let spec_n = spec.run(fuel);
            let mut j = Jet::from_state(&image);
            let jet_n = j.run(fuel);
            assert_eq!(jet_n, spec_n, "fuel {fuel}");
            assert!(j.to_state().isa_visible_eq(&spec), "fuel {fuel}");
        }
    }

    #[test]
    fn halt_before_execute_writes_nothing() {
        // The canonical halt: the reference run loop stops *before*
        // executing it, so the link register must stay untouched.
        let image = count_to_ten();
        let mut spec = image.clone();
        spec.run(10_000);
        let mut j = Jet::from_state(&image);
        j.run(10_000);
        assert_eq!(j.regs[61], spec.regs[61], "halt link register untouched on both");
        // Running again retires nothing more.
        assert_eq!(j.run(100), 0);
        assert!(j.is_halted());
    }

    #[test]
    fn wedges_on_reserved_like_reference() {
        let mut image = State::new();
        image.mem.write_word(0, ag32::encode(Instr::Reserved));
        let mut j = Jet::from_state(&image);
        assert_eq!(j.run(100), 0);
        assert_eq!(j.pc, 0);
        assert!(j.is_halted());
    }

    #[test]
    fn slow_path_covers_misaligned_and_unmapped_pc() {
        // A jump to a misaligned target: fetch is word-granular.
        let mut image = State::new();
        let mut a = Assembler::new(0);
        a.li(Reg::new(1), 0x102); // misaligned target
        a.ret(Reg::new(1), Reg::new(2)); // computed jump to r1
        let code = a.assemble().expect("assembles");
        image.mem.write_bytes(0, &code);
        image.mem.write_word(
            0x100,
            ag32::encode(Instr::Normal {
                func: Func::Add,
                w: Reg::new(3),
                a: Ri::Imm(1),
                b: Ri::Imm(2),
            }),
        );
        let mut spec = image.clone();
        let mut j = Jet::from_state(&image);
        let fuel = 4;
        spec.run(fuel);
        j.run(fuel);
        assert!(j.to_state().isa_visible_eq(&spec));
        assert!(j.counters().slow_steps > 0);
    }
}
