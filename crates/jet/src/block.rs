//! Lowered instructions and basic blocks for the translation cache.
//!
//! [`lower`] turns one decoded [`ag32::Instr`] into an [`Op`]: the same
//! semantics with all decode-time work — operand extraction, immediate
//! sign-extension, `LoadConstant` negation, `LoadUpperConstant` shifting
//! — hoisted out of the execution loop. A [`Block`] is a maximal run of
//! lowered ops ending at the first control-flow instruction (or at the
//! [`BLOCK_CAP`] / mirror boundary), plus the self-modifying-code
//! metadata needed to validate it cheaply on entry: the mirrored pages
//! it decodes from with their generation snapshots, and a monomorphic
//! inline cache of the successor block for chaining.

use ag32::{Func, Instr, Opcode, Ri, Shift};

/// Longest block, in instructions. 64 instructions is 256 bytes, so a
/// block spans at most two 4 KiB pages.
pub const BLOCK_CAP: usize = 64;

/// A pre-extracted register-or-immediate operand. Immediates are
/// sign-extended to a full word at decode time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Src {
    /// Read the operand from register `.0`.
    R(u8),
    /// A pre-extended immediate.
    I(u32),
}

impl From<Ri> for Src {
    fn from(ri: Ri) -> Src {
        match ri {
            Ri::Reg(r) => Src::R(r.index() as u8),
            Ri::Imm(v) => Src::I(v as i32 as u32),
        }
    }
}

/// One lowered instruction. Field meanings mirror [`ag32::Instr`];
/// everything an operand fetch would compute is precomputed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// `R[w] := alu(func, a, b)`.
    Normal { func: Func, w: u8, a: Src, b: Src },
    /// `R[w] := shift(kind, a, b mod 32)`.
    Shift { kind: Shift, w: u8, a: Src, b: Src },
    /// `mem[align4(b)] := a`.
    StoreMem { a: Src, b: Src },
    /// `mem[b] := low byte of a`.
    StoreMemByte { a: Src, b: Src },
    /// `R[w] := mem[align4(a)]`.
    LoadMem { w: u8, a: Src },
    /// `R[w] := zero-extended mem[a]`.
    LoadMemByte { w: u8, a: Src },
    /// `R[w] := data_in`.
    In { w: u8 },
    /// `v := alu(func, a, b); R[w] := v; data_out := v`.
    Out { func: Func, w: u8, a: Src, b: Src },
    /// `R[w] := accel(a)`.
    Accel { w: u8, a: Src },
    /// `R[w] := PC + 4; PC := alu(func, PC, a)`. Block terminator; the
    /// executor checks the halt conditions (`Snd` self-jump, `Add`
    /// zero offset) *before* executing, like the reference run loop.
    Jump { func: Func, w: u8, a: Src },
    /// `if alu(func, a, b) == 0 { PC += off } else { PC += 4 }`.
    JumpIfZero { func: Func, off: Src, a: Src, b: Src },
    /// `if alu(func, a, b) != 0 { PC += off } else { PC += 4 }`.
    JumpIfNotZero { func: Func, off: Src, a: Src, b: Src },
    /// `R[w] := value` (negation already applied).
    LoadConst { w: u8, value: u32 },
    /// `R[w] := mask | (R[w] & 0x7F_FFFF)` (immediate already shifted).
    LoadUpper { w: u8, mask: u32 },
    /// Push an I/O-window snapshot onto the event trace.
    Interrupt,
    /// Illegal instruction: wedges the machine. Block terminator.
    Reserved,
}

impl Op {
    /// The instruction class, for the engine's [`ag32::ExecStats`].
    #[must_use]
    pub fn opcode(self) -> Opcode {
        match self {
            Op::Normal { .. } => Opcode::Normal,
            Op::Shift { .. } => Opcode::Shift,
            Op::StoreMem { .. } => Opcode::StoreMem,
            Op::StoreMemByte { .. } => Opcode::StoreMemByte,
            Op::LoadMem { .. } => Opcode::LoadMem,
            Op::LoadMemByte { .. } => Opcode::LoadMemByte,
            Op::In { .. } => Opcode::In,
            Op::Out { .. } => Opcode::Out,
            Op::Accel { .. } => Opcode::Accelerator,
            Op::Jump { .. } => Opcode::Jump,
            Op::JumpIfZero { .. } => Opcode::JumpIfZero,
            Op::JumpIfNotZero { .. } => Opcode::JumpIfNotZero,
            Op::LoadConst { .. } => Opcode::LoadConstant,
            Op::LoadUpper { .. } => Opcode::LoadUpperConstant,
            Op::Interrupt => Opcode::Interrupt,
            Op::Reserved => Opcode::Reserved,
        }
    }

    /// Whether this op ends a block (transfers or wedges control).
    #[must_use]
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Op::Jump { .. } | Op::JumpIfZero { .. } | Op::JumpIfNotZero { .. } | Op::Reserved
        )
    }
}

/// Lowers one decoded instruction.
#[must_use]
pub fn lower(i: Instr) -> Op {
    let w8 = |w: ag32::Reg| w.index() as u8;
    match i {
        Instr::Normal { func, w, a, b } => Op::Normal { func, w: w8(w), a: a.into(), b: b.into() },
        Instr::Shift { kind, w, a, b } => Op::Shift { kind, w: w8(w), a: a.into(), b: b.into() },
        Instr::StoreMem { a, b } => Op::StoreMem { a: a.into(), b: b.into() },
        Instr::StoreMemByte { a, b } => Op::StoreMemByte { a: a.into(), b: b.into() },
        Instr::LoadMem { w, a } => Op::LoadMem { w: w8(w), a: a.into() },
        Instr::LoadMemByte { w, a } => Op::LoadMemByte { w: w8(w), a: a.into() },
        Instr::In { w } => Op::In { w: w8(w) },
        Instr::Out { func, w, a, b } => Op::Out { func, w: w8(w), a: a.into(), b: b.into() },
        Instr::Accelerator { w, a } => Op::Accel { w: w8(w), a: a.into() },
        Instr::Jump { func, w, a } => Op::Jump { func, w: w8(w), a: a.into() },
        Instr::JumpIfZero { func, w, a, b } => {
            Op::JumpIfZero { func, off: w.into(), a: a.into(), b: b.into() }
        }
        Instr::JumpIfNotZero { func, w, a, b } => {
            Op::JumpIfNotZero { func, off: w.into(), a: a.into(), b: b.into() }
        }
        Instr::LoadConstant { w, negate, imm } => Op::LoadConst {
            w: w8(w),
            value: if negate { imm.wrapping_neg() } else { imm },
        },
        Instr::LoadUpperConstant { w, imm } => {
            Op::LoadUpper { w: w8(w), mask: u32::from(imm) << 23 }
        }
        Instr::Interrupt => Op::Interrupt,
        Instr::Reserved => Op::Reserved,
    }
}

/// A decoded, validated-on-entry basic block of the translation cache.
#[derive(Clone, Debug)]
pub struct Block {
    /// Fetch address of `ops[0]` (word-aligned, inside the mirror).
    pub start: u32,
    /// The lowered instructions; at most [`BLOCK_CAP`], ending at the
    /// first terminator (or the cap / mirror boundary).
    pub ops: Vec<Op>,
    /// The mirrored pages this block decodes from (`first ≤ last`,
    /// at most two pages) with their generation snapshots.
    pub pages: [(u32, u32); 2],
    /// Monomorphic successor cache: `(expected next PC, arena index)`.
    pub succ: Option<(u32, u32)>,
}

impl Block {
    /// Whether the generation snapshots still match `gen_of` — i.e. no
    /// store has hit the block's pages since it was decoded.
    #[inline]
    #[must_use]
    pub fn valid(&self, gen_of: impl Fn(usize) -> u32) -> bool {
        self.pages.iter().all(|&(p, g)| gen_of(p as usize) == g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ag32::Reg;

    #[test]
    fn lowering_precomputes_operands() {
        // Immediate sign extension happens at decode time.
        let op = lower(Instr::Normal {
            func: Func::Add,
            w: Reg::new(3),
            a: Ri::Imm(-1),
            b: Ri::Reg(Reg::new(7)),
        });
        assert_eq!(op, Op::Normal { func: Func::Add, w: 3, a: Src::I(u32::MAX), b: Src::R(7) });
        // Negated constants are folded.
        let op = lower(Instr::LoadConstant { w: Reg::new(1), negate: true, imm: 5 });
        assert_eq!(op, Op::LoadConst { w: 1, value: 5u32.wrapping_neg() });
        // Upper-constant shifting is folded.
        let op = lower(Instr::LoadUpperConstant { w: Reg::new(1), imm: 0x1FF });
        assert_eq!(op, Op::LoadUpper { w: 1, mask: 0x1FFu32 << 23 });
    }

    #[test]
    fn terminators_and_opcodes() {
        let jump = lower(Instr::Jump { func: Func::Snd, w: Reg::new(0), a: Ri::Imm(0) });
        assert!(jump.is_terminator());
        assert_eq!(jump.opcode(), Opcode::Jump);
        assert!(lower(Instr::Reserved).is_terminator());
        let add = lower(Instr::Normal {
            func: Func::Add,
            w: Reg::new(0),
            a: Ri::Imm(0),
            b: Ri::Imm(0),
        });
        assert!(!add.is_terminator());
        assert_eq!(lower(Instr::Interrupt).opcode(), Opcode::Interrupt);
    }
}
