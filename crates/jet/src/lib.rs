//! # jet — a translation-cache execution engine for the Silver ISA
//!
//! The reference interpreter ([`ag32::State::next`]) re-fetches,
//! re-decodes and re-resolves sparse memory pages on every single `Next`
//! step. That is the right shape for a *specification* — it mirrors the
//! paper's `Next` function line by line — but it caps the throughput of
//! everything built on top: the campaign engine's cases/sec, the
//! end-to-end batch checker, and the "compiler running on Silver"
//! measurements (the paper's §7 reports hours of simulated cycles for
//! exactly this reason).
//!
//! `jet` is a second, *untrusted* execution level for the same ISA:
//!
//! * **Translation cache** ([`block`]) — each basic block is decoded
//!   once into a dense array of pre-extracted operand structs
//!   ([`block::Op`]) and dispatched through a tight match loop, with
//!   monomorphic block chaining for fall-through and direct jumps.
//! * **Flat resident memory** ([`JetMemory`]) — the image region is
//!   mirrored into one contiguous allocation with single-lookup
//!   word-aligned fast paths; addresses outside the mirror fall back to
//!   the sparse reference [`ag32::Memory`] semantics byte for byte.
//! * **Self-modifying code** — per-page generation counters invalidate
//!   stale cached blocks (the CakeML GC and the image loader both write
//!   code-adjacent pages); stores into the *currently executing* block
//!   abort the block mid-flight and force a re-decode.
//! * **Shadow mode** ([`shadow`]) — runs the reference `Next` in
//!   lockstep (full, or 1-in-N sampled) and reports the first
//!   divergence through [`obs::Forensics`].
//!
//! Following *Sound Transpilation from Binary to Machine-Independent
//! Code* (Metere et al.) and the differential-testing methodology of
//! the source paper, the engine is admitted **only** alongside an
//! executable equivalence obligation against the reference semantics:
//!
//! > **Theorem J** (executable obligation): for every image and fuel,
//! > running `jet` and running `Next` retire the same instruction
//! > stream and agree on the final PC, registers, flags, memory,
//! > `data_out`, I/O events and exit status.
//!
//! Theorem J is exercised three ways: the `differential` property suite
//! in this crate (random programs, with shrinking), the `t-jet`
//! campaign target (coverage-guided), and full shadow mode in the
//! engine-equivalence integration tests. The benchmark suite
//! (`benches/engines.rs` in the `bench` crate) runs shadow-off and
//! records the speedup trajectory in `BENCH_engines.json`.
//!
//! # Example
//!
//! ```
//! use ag32::{asm::Assembler, Func, Reg, Ri, State};
//!
//! let mut a = Assembler::new(0);
//! let r1 = Reg::new(1);
//! a.li(r1, 0);
//! a.label("loop");
//! a.normal(Func::Add, r1, Ri::Reg(r1), Ri::Imm(1));
//! a.li(Reg::new(2), 10);
//! a.branch_nonzero_sub(Ri::Reg(r1), Ri::Reg(Reg::new(2)), "loop", Reg::new(60));
//! a.halt(Reg::new(61));
//! let code = a.assemble().unwrap();
//!
//! let mut image = State::new();
//! image.mem.write_bytes(0, &code);
//!
//! // Fast path: the translation-cache engine.
//! let mut j = jet::Jet::from_state(&image);
//! j.run(1_000);
//! assert_eq!(j.regs[1], 10);
//!
//! // The same run as an executable theorem-J obligation.
//! let report = jet::run_shadow(&image, 1_000, 1, 0).unwrap();
//! assert!(report.retired > 0);
//! ```

pub mod block;
mod engine;
mod mem;
pub mod shadow;

pub use engine::{Jet, JetCounters};
pub use mem::JetMemory;
pub use shadow::{run_shadow, run_shadow_anchored, AnchoredDivergence, ShadowReport};
