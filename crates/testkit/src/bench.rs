//! A wall-clock bench timer replacing criterion.
//!
//! Each benchmark runs a warmup, then `sample_size` timed samples; fast
//! closures are auto-batched so every sample lasts long enough for the
//! OS timer to resolve. Results are printed as a table and appended as
//! JSON lines to `BENCH_<suite>.json` (override with the `BENCH_OUT`
//! environment variable; set `BENCH_OUT=-` to skip the file).
//!
//! Bench binaries keep `harness = false` and call this from `main`:
//!
//! ```ignore
//! fn main() {
//!     let mut b = testkit::bench::Bench::new("layers").sample_size(10);
//!     b.bench("layer2_isa", || { /* workload */ });
//!     b.finish();
//! }
//! ```

use std::io::Write as _;
use std::time::Instant;

/// Timing summary for one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Timed samples taken.
    pub samples: u32,
    /// Iterations batched into each sample.
    pub iters_per_sample: u64,
    /// Median over samples.
    pub median_ns: f64,
    /// 95th percentile over samples.
    pub p95_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
}

impl BenchResult {
    fn json(&self, suite: &str) -> String {
        format!(
            "{{\"suite\":\"{}\",\"name\":\"{}\",\"samples\":{},\
             \"iters_per_sample\":{},\"median_ns\":{:.1},\"p95_ns\":{:.1},\
             \"min_ns\":{:.1},\"mean_ns\":{:.1}}}",
            escape(suite),
            escape(&self.name),
            self.samples,
            self.iters_per_sample,
            self.median_ns,
            self.p95_ns,
            self.min_ns,
            self.mean_ns
        )
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

/// Formats nanoseconds human-readably.
#[must_use]
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A benchmark suite: times closures and records JSON-lines results.
pub struct Bench {
    suite: String,
    sample_size: u32,
    warmup: u32,
    /// Target duration per sample when auto-batching fast closures.
    min_sample_ns: f64,
    results: Vec<BenchResult>,
}

impl Bench {
    /// Creates a suite named `suite`.
    #[must_use]
    pub fn new(suite: &str) -> Self {
        Bench {
            suite: suite.to_string(),
            sample_size: 10,
            warmup: 2,
            min_sample_ns: 5e6,
            results: Vec::new(),
        }
    }

    /// Sets the number of timed samples (criterion's `sample_size`).
    #[must_use]
    pub fn sample_size(mut self, n: u32) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the number of warmup invocations.
    #[must_use]
    pub fn warmup(mut self, n: u32) -> Self {
        self.warmup = n;
        self
    }

    /// Times `f`, records the result, and prints a one-line summary.
    /// The closure's return value is consumed with [`std::hint::black_box`]
    /// so the work is not optimised away.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &BenchResult {
        // Warmup, and measure a single call to pick the batch size.
        let mut single_ns = f64::MAX;
        for _ in 0..self.warmup.max(1) {
            let t = Instant::now();
            std::hint::black_box(f());
            single_ns = single_ns.min(t.elapsed().as_nanos() as f64);
        }
        let iters_per_sample = if single_ns >= self.min_sample_ns {
            1
        } else {
            ((self.min_sample_ns / single_ns.max(1.0)).ceil() as u64).clamp(1, 1_000_000)
        };

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size as usize);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let n = per_iter.len();
        let median = if n % 2 == 0 {
            (per_iter[n / 2 - 1] + per_iter[n / 2]) / 2.0
        } else {
            per_iter[n / 2]
        };
        let p95 = per_iter[(((n as f64) * 0.95).ceil() as usize).clamp(1, n) - 1];
        let result = BenchResult {
            name: name.to_string(),
            samples: self.sample_size,
            iters_per_sample,
            median_ns: median,
            p95_ns: p95,
            min_ns: per_iter[0],
            mean_ns: per_iter.iter().sum::<f64>() / n as f64,
        };
        eprintln!(
            "bench {:<32} median {:>12}   p95 {:>12}   ({} samples × {} iters)",
            name,
            fmt_ns(result.median_ns),
            fmt_ns(result.p95_ns),
            result.samples,
            result.iters_per_sample
        );
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// The path JSON lines will be written to, or `None` when disabled.
    #[must_use]
    pub fn out_path(&self) -> Option<std::path::PathBuf> {
        match std::env::var("BENCH_OUT") {
            Ok(p) if p == "-" => None,
            Ok(p) => Some(p.into()),
            Err(_) => Some(format!("BENCH_{}.json", self.suite).into()),
        }
    }

    /// Writes all recorded results as JSON lines and returns them.
    pub fn finish(self) -> Vec<BenchResult> {
        if let Some(path) = self.out_path() {
            match std::fs::File::create(&path) {
                Ok(mut f) => {
                    for r in &self.results {
                        let _ = writeln!(f, "{}", r.json(&self.suite));
                    }
                    eprintln!("bench results -> {}", path.display());
                }
                Err(e) => eprintln!("bench: cannot write {}: {e}", path.display()),
            }
        }
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_a_closure_and_batches_fast_ones() {
        let mut b = Bench::new("selftest").sample_size(4).warmup(1);
        let r = b.bench("incr", || 1 + 1).clone();
        assert_eq!(r.samples, 4);
        assert!(r.iters_per_sample > 1, "trivial closure should batch");
        assert!(r.median_ns >= 0.0 && r.min_ns <= r.p95_ns);
    }

    #[test]
    fn json_is_wellformed_lines() {
        let r = BenchResult {
            name: "x\"y".into(),
            samples: 3,
            iters_per_sample: 7,
            median_ns: 1.5,
            p95_ns: 2.0,
            min_ns: 1.0,
            mean_ns: 1.6,
        };
        let j = r.json("suite");
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"suite\":\"suite\""));
        assert!(j.contains("x\\\"y"));
        assert!(j.contains("\"median_ns\":1.5"));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert!(fmt_ns(12_500.0).contains("µs"));
        assert!(fmt_ns(12_500_000.0).contains("ms"));
        assert!(fmt_ns(2.5e9).contains(" s"));
    }
}
