//! A bounded work queue and a restartable worker pool.
//!
//! [`par_map`](crate::par::par_map) fans a *batch* out and joins; a
//! long-lived server needs the dual shape: producers pushing jobs into a
//! **bounded** queue (back-pressure instead of unbounded memory growth)
//! and a pool of workers that can be stopped, respawned and joined
//! individually — the silver execution service kills a worker mid-job
//! and resumes the job from its checkpoint on another worker, so worker
//! lifetime must be decoupled from queue lifetime.
//!
//! Everything here is `std`-only (`Mutex` + `Condvar` + `thread`), like
//! the rest of `testkit`.
//!
//! * [`WorkQueue`] — multi-producer/multi-consumer FIFO with a capacity
//!   bound, a non-blocking [`try_push`](WorkQueue::try_push), a
//!   capacity-exempt [`push_front`](WorkQueue::push_front) (the requeue
//!   lane for migrated jobs: it must never deadlock against full
//!   queues), and close semantics (pops drain remaining items, then
//!   report closed).
//! * [`WorkerPool`] — N threads running one shared handler; each worker
//!   carries a stop flag ([`WorkerCtl`]) that the handler can poll at
//!   its own safe points (checkpoint boundaries), so a stop request
//!   interrupts *between* units of progress, never mid-unit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (the item is handed back).
    Full(T),
    /// The queue is closed (the item is handed back).
    Closed(T),
}

/// The outcome of a timed pop.
#[derive(Debug)]
pub enum Pop<T> {
    /// An item.
    Item(T),
    /// Nothing arrived within the timeout; the queue is still open.
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

struct QState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer FIFO.
pub struct WorkQueue<T> {
    cap: usize,
    state: Mutex<QState<T>>,
    can_pop: Condvar,
    can_push: Condvar,
}

impl<T> WorkQueue<T> {
    /// A queue admitting at most `cap` items (≥ 1) through the
    /// capacity-checked push paths.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is 0.
    #[must_use]
    pub fn bounded(cap: usize) -> Arc<WorkQueue<T>> {
        assert!(cap > 0, "WorkQueue capacity must be at least 1");
        Arc::new(WorkQueue {
            cap,
            state: Mutex::new(QState { items: VecDeque::new(), closed: false }),
            can_pop: Condvar::new(),
            can_push: Condvar::new(),
        })
    }

    /// Pushes, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Hands the item back when the queue is (or becomes) closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.cap {
                st.items.push_back(item);
                self.can_pop.notify_one();
                return Ok(());
            }
            st = self.can_push.wait(st).expect("queue lock");
        }
    }

    /// Pushes without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] when
    /// closed; both hand the item back.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.state.lock().expect("queue lock");
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        st.items.push_back(item);
        self.can_pop.notify_one();
        Ok(())
    }

    /// Pushes to the *front*, exempt from the capacity bound — the
    /// requeue lane: a worker handing back an interrupted job must never
    /// block (it may be the only worker) and the job should be resumed
    /// before fresh work is started.
    ///
    /// # Errors
    ///
    /// Hands the item back when the queue is closed.
    pub fn push_front(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock().expect("queue lock");
        if st.closed {
            return Err(item);
        }
        st.items.push_front(item);
        self.can_pop.notify_one();
        Ok(())
    }

    /// Pops, blocking until an item arrives or the queue is closed and
    /// drained (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = st.items.pop_front() {
                self.can_push.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.can_pop.wait(st).expect("queue lock");
        }
    }

    /// [`pop`](WorkQueue::pop) with a timeout, so workers can interleave
    /// stop-flag checks with waiting.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = st.items.pop_front() {
                self.can_push.notify_one();
                return Pop::Item(item);
            }
            if st.closed {
                return Pop::Closed;
            }
            let (next, res) = self.can_pop.wait_timeout(st, timeout).expect("queue lock");
            st = next;
            if res.timed_out() && st.items.is_empty() && !st.closed {
                return Pop::TimedOut;
            }
        }
    }

    /// Closes the queue: further pushes fail, pops drain what remains.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("queue lock");
        st.closed = true;
        self.can_pop.notify_all();
        self.can_push.notify_all();
    }

    /// Whether [`close`](WorkQueue::close) has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-worker control handle, passed to the handler on every item. The
/// handler polls [`stop_requested`](WorkerCtl::stop_requested) at its
/// own safe points (e.g. checkpoint boundaries) and winds the item down
/// cooperatively; it may also [`request_stop`](WorkerCtl::request_stop)
/// on itself to simulate a worker death after handing work back.
pub struct WorkerCtl {
    /// Stable worker index within its pool (respawned workers get fresh
    /// indices).
    pub index: usize,
    stop: Arc<AtomicBool>,
}

impl WorkerCtl {
    /// Whether this worker has been asked to stop.
    #[must_use]
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Asks this worker to stop (it exits after the current item).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

struct PoolWorker {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// How long an idle worker waits before re-checking its stop flag.
const IDLE_TICK: Duration = Duration::from_millis(20);

/// A pool of worker threads draining one [`WorkQueue`] through a shared
/// handler. Workers exit when the queue closes, when individually
/// stopped, or when the handler panics; [`spawn_worker`]
/// (WorkerPool::spawn_worker) replaces dead ones with the same handler.
pub struct WorkerPool<T: Send + 'static> {
    queue: Arc<WorkQueue<T>>,
    handler: Arc<dyn Fn(&WorkerCtl, T) + Send + Sync>,
    workers: Vec<PoolWorker>,
    next_index: usize,
}

impl<T: Send + 'static> WorkerPool<T> {
    /// Spawns `n` workers running `handler` over `queue`.
    #[must_use]
    pub fn new(
        queue: Arc<WorkQueue<T>>,
        n: usize,
        handler: impl Fn(&WorkerCtl, T) + Send + Sync + 'static,
    ) -> WorkerPool<T> {
        let mut pool = WorkerPool {
            queue,
            handler: Arc::new(handler),
            workers: Vec::new(),
            next_index: 0,
        };
        for _ in 0..n {
            pool.spawn_worker();
        }
        pool
    }

    /// Spawns one more worker; returns its index.
    pub fn spawn_worker(&mut self) -> usize {
        let index = self.next_index;
        self.next_index += 1;
        let stop = Arc::new(AtomicBool::new(false));
        let ctl = WorkerCtl { index, stop: Arc::clone(&stop) };
        let queue = Arc::clone(&self.queue);
        let handler = Arc::clone(&self.handler);
        let handle = std::thread::spawn(move || loop {
            if ctl.stop_requested() {
                break;
            }
            match queue.pop_timeout(IDLE_TICK) {
                Pop::Item(item) => handler(&ctl, item),
                Pop::TimedOut => {}
                Pop::Closed => break,
            }
        });
        self.workers.push(PoolWorker { stop, handle: Some(handle) });
        index
    }

    /// Signals worker `i` to stop (it exits after its current item; a
    /// cooperative handler exits mid-item at its next safe point).
    /// Returns `false` for an unknown index.
    pub fn stop_worker(&mut self, i: usize) -> bool {
        match self.workers.get(i) {
            Some(w) => {
                w.stop.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Joins worker `i` (after [`stop_worker`](WorkerPool::stop_worker)
    /// or queue close), propagating its panic. Returns `false` for an
    /// unknown or already-joined index.
    ///
    /// # Panics
    ///
    /// Re-raises the worker's panic.
    pub fn join_worker(&mut self, i: usize) -> bool {
        match self.workers.get_mut(i).and_then(|w| w.handle.take()) {
            Some(h) => {
                if let Err(p) = h.join() {
                    std::panic::resume_unwind(p);
                }
                true
            }
            None => false,
        }
    }

    /// Workers whose threads have finished (stopped, crashed, or exited
    /// on queue close) but have not been joined yet.
    #[must_use]
    pub fn finished_workers(&self) -> Vec<usize> {
        self.workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.handle.as_ref().is_some_and(JoinHandle::is_finished))
            .map(|(i, _)| i)
            .collect()
    }

    /// Worker slots ever spawned (including stopped/joined ones).
    #[must_use]
    pub fn spawned(&self) -> usize {
        self.workers.len()
    }

    /// Joins every worker. Close the queue (or stop each worker) first,
    /// or this blocks forever.
    ///
    /// # Panics
    ///
    /// Re-raises the first worker panic after all workers have stopped.
    pub fn join(mut self) {
        let mut first_panic = None;
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                if let Err(p) = h.join() {
                    first_panic.get_or_insert(p);
                }
            }
        }
        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn fifo_order_with_one_worker() {
        let q: Arc<WorkQueue<u64>> = WorkQueue::bounded(16);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let pool = WorkerPool::new(Arc::clone(&q), 1, move |_ctl, item| {
            seen2.lock().unwrap().push(item);
        });
        for i in 0..10 {
            q.push(i).unwrap();
        }
        q.close();
        pool.join();
        assert_eq!(*seen.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn try_push_reports_full_and_closed() {
        let q: Arc<WorkQueue<u8>> = WorkQueue::bounded(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        q.close();
        match q.try_push(4) {
            Err(PushError::Closed(4)) => {}
            other => panic!("expected Closed(4), got {other:?}"),
        }
        // Close drains: remaining items still pop, then Closed.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_front_jumps_the_line_and_ignores_capacity() {
        let q: Arc<WorkQueue<u8>> = WorkQueue::bounded(1);
        q.push(1).unwrap();
        q.push_front(9).unwrap();
        assert_eq!(q.len(), 2, "push_front is capacity-exempt");
        assert_eq!(q.pop(), Some(9), "requeued item comes first");
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn pop_timeout_times_out_on_an_open_empty_queue() {
        let q: Arc<WorkQueue<u8>> = WorkQueue::bounded(1);
        match q.pop_timeout(Duration::from_millis(5)) {
            Pop::TimedOut => {}
            other => panic!("expected TimedOut, got {other:?}"),
        }
        q.close();
        match q.pop_timeout(Duration::from_millis(5)) {
            Pop::Closed => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn blocking_push_resumes_when_capacity_frees() {
        let q: Arc<WorkQueue<u64>> = WorkQueue::bounded(1);
        q.push(0).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(q.pop(), Some(0), "frees capacity for the blocked push");
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn multi_worker_pool_processes_every_item_exactly_once() {
        let q: Arc<WorkQueue<u64>> = WorkQueue::bounded(8);
        let sum = Arc::new(AtomicU64::new(0));
        let count = Arc::new(AtomicU64::new(0));
        let (sum2, count2) = (Arc::clone(&sum), Arc::clone(&count));
        let pool = WorkerPool::new(Arc::clone(&q), 4, move |_ctl, item: u64| {
            sum2.fetch_add(item, Ordering::Relaxed);
            count2.fetch_add(1, Ordering::Relaxed);
        });
        for i in 1..=100 {
            q.push(i).unwrap();
        }
        q.close();
        pool.join();
        assert_eq!(count.load(Ordering::Relaxed), 100);
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn stopped_worker_exits_and_a_respawn_takes_over() {
        let q: Arc<WorkQueue<u64>> = WorkQueue::bounded(8);
        let count = Arc::new(AtomicU64::new(0));
        let count2 = Arc::clone(&count);
        let mut pool = WorkerPool::new(Arc::clone(&q), 1, move |_ctl, _item| {
            count2.fetch_add(1, Ordering::Relaxed);
        });
        q.push(1).unwrap();
        // Wait until the first item is handled, then stop the worker.
        while count.load(Ordering::Relaxed) < 1 {
            std::thread::yield_now();
        }
        pool.stop_worker(0);
        pool.join_worker(0);
        // Work queued while no worker is alive is picked up by a respawn.
        q.push(2).unwrap();
        let idx = pool.spawn_worker();
        assert_eq!(idx, 1, "respawned worker gets a fresh index");
        while count.load(Ordering::Relaxed) < 2 {
            std::thread::yield_now();
        }
        q.close();
        pool.join();
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn handler_sees_stop_request_mid_item() {
        let q: Arc<WorkQueue<u64>> = WorkQueue::bounded(2);
        let observed = Arc::new(AtomicBool::new(false));
        let observed2 = Arc::clone(&observed);
        let mut pool = WorkerPool::new(Arc::clone(&q), 1, move |ctl, _item| {
            // Simulate a sliced job polling its safe point.
            while !ctl.stop_requested() {
                std::thread::yield_now();
            }
            observed2.store(true, Ordering::Relaxed);
        });
        q.push(1).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        pool.stop_worker(0);
        pool.join_worker(0);
        assert!(observed.load(Ordering::Relaxed), "handler observed the stop mid-item");
        q.close();
        pool.join();
    }

    #[test]
    fn pool_join_propagates_handler_panics() {
        let r = std::panic::catch_unwind(|| {
            let q: Arc<WorkQueue<u64>> = WorkQueue::bounded(2);
            let pool = WorkerPool::new(Arc::clone(&q), 1, |_ctl, item: u64| {
                assert!(item != 7, "item 7 fails");
            });
            q.push(7).unwrap();
            q.close();
            pool.join();
        });
        assert!(r.is_err(), "worker panic must reach the caller");
    }
}
