//! A minimal property-testing harness with integrated shrinking.
//!
//! # Model
//!
//! A property is a closure `FnMut(&mut Ctx)` that draws random values
//! through the [`Ctx`] handle and panics (usually via `assert!`) when
//! the property is violated. Every draw is recorded as a `u64` *choice*;
//! shrinking operates on the recorded choice stream (Hypothesis-style):
//! candidate streams are produced by trimming chunks (which shrinks
//! collections and recursive AST-shaped data, because generators read
//! zeros past the end of the stream and zero selects the first/leaf
//! alternative) and by halving individual choices toward zero (which
//! shrinks integers toward the simplest value). A candidate is accepted
//! only if replaying it still fails the property, so the reported
//! counterexample is always a genuine failure.
//!
//! # Determinism and reproduction
//!
//! Case seeds derive from the master seed (`TESTKIT_SEED`, or a fixed
//! default) via SplitMix64, so two runs with the same seed generate the
//! same cases, find the same failures, and — because the shrink passes
//! are deterministic — report the identical minimal counterexample.
//! Failures print a one-line reproduction command
//! (`TESTKIT_CASE_SEED=… cargo test …`) and persist their seed to a
//! `*.testkit-regressions` file that is re-run before fresh cases on
//! every subsequent invocation.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Once;

use crate::rng::{draw_below_inclusive, SampleRange, SampleUniform, SplitMix64, TestRng};

/// Default number of random cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Configuration for a single property check.
#[derive(Clone, Debug)]
pub struct Config {
    /// Property name (the `#[test]` function name).
    pub name: &'static str,
    /// Package name, for the printed reproduction command.
    pub pkg: &'static str,
    /// Number of random cases (overridden by `TESTKIT_CASES`).
    pub cases: u32,
    /// Evaluation budget for the shrink loop.
    pub max_shrink_evals: u32,
    /// Regression-seed file, re-run before fresh cases and appended on
    /// new failures. `None` disables persistence.
    pub regressions: Option<PathBuf>,
}

impl Config {
    /// A configuration with defaults and no regression persistence.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        Config {
            name,
            pkg: "",
            cases: DEFAULT_CASES,
            max_shrink_evals: 1024,
            regressions: None,
        }
    }

    /// Sets the package name used in reproduction commands.
    #[must_use]
    pub fn pkg(mut self, pkg: &'static str) -> Self {
        self.pkg = pkg;
        self
    }

    /// Sets the case count.
    #[must_use]
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Sets the case count unless `cases` is zero (macro plumbing).
    #[must_use]
    pub fn default_cases(mut self, cases: u32) -> Self {
        if cases > 0 {
            self.cases = cases;
        }
        self
    }

    /// Sets the shrink evaluation budget.
    #[must_use]
    pub fn max_shrink_evals(mut self, evals: u32) -> Self {
        self.max_shrink_evals = evals;
        self
    }

    /// Persist regression seeds to an explicit file.
    #[must_use]
    pub fn regressions_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.regressions = Some(path.into());
        self
    }

    /// Persist regression seeds to
    /// `<manifest_dir>/tests/<file stem>.testkit-regressions` — the
    /// in-tree replacement for proptest's `*.proptest-regressions`.
    #[must_use]
    pub fn regressions_for(self, manifest_dir: &str, source_file: &str) -> Self {
        let stem = Path::new(source_file)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("prop");
        self.regressions_file(
            Path::new(manifest_dir)
                .join("tests")
                .join(format!("{stem}.testkit-regressions")),
        )
    }
}

// ---------------------------------------------------------------------------
// Choice sources
// ---------------------------------------------------------------------------

enum Source<'a> {
    /// Draw fresh values from the PRNG, recording every choice.
    Fresh(&'a mut TestRng),
    /// Replay a recorded stream; reads past the end yield zero (the
    /// minimal choice), which generators must treat as "simplest".
    Replay { choices: &'a [u64], pos: usize },
}

/// The handle a property draws random values through.
///
/// Draw methods are shrink-aware by construction: choice `0` always maps
/// to the simplest value (zero for integer ranges spanning zero, the
/// lower bound otherwise, `false` for booleans, the first alternative
/// for [`Ctx::choose`], the empty collection for [`Ctx::vec_of`]).
pub struct Ctx<'a> {
    source: Source<'a>,
    record: Vec<u64>,
}

impl<'a> Ctx<'a> {
    fn fresh(rng: &'a mut TestRng) -> Self {
        Ctx { source: Source::Fresh(rng), record: Vec::new() }
    }

    fn replay(choices: &'a [u64]) -> Self {
        Ctx { source: Source::Replay { choices, pos: 0 }, record: Vec::new() }
    }

    /// A context drawing fresh values from `rng`, recording every
    /// choice. The campaign engine uses this to generate a case *and*
    /// keep its choice stream for the corpus
    /// ([`Ctx::recorded_choices`]).
    #[must_use]
    pub fn recording(rng: &'a mut TestRng) -> Self {
        Ctx::fresh(rng)
    }

    /// A context replaying a recorded choice stream. Reads past the end
    /// yield zero — the simplest choice — so truncated or mutated
    /// streams still produce a well-formed value. This is how corpus
    /// seed files are turned back into cases.
    #[must_use]
    pub fn replaying(choices: &'a [u64]) -> Self {
        Ctx::replay(choices)
    }

    /// The choices drawn through this context so far.
    #[must_use]
    pub fn recorded_choices(&self) -> &[u64] {
        &self.record
    }

    /// A raw choice in `0..=bound`.
    pub fn draw(&mut self, bound: u64) -> u64 {
        let v = match &mut self.source {
            Source::Fresh(rng) => draw_below_inclusive(*rng, bound),
            Source::Replay { choices, pos } => {
                let v = choices.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                v.min(bound)
            }
        };
        self.record.push(v);
        v
    }

    /// A uniform value in `range` (`a..b` or `a..=b`); shrinks toward
    /// zero when the range contains zero, toward the lower bound
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: CtxSample, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds_inclusive();
        assert!(lo <= hi, "empty range in Ctx::gen_range");
        T::sample_ctx(self, lo, hi)
    }

    /// `true` with probability `p`; shrinks toward `false`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        const BITS: u64 = 1 << 53;
        let threshold = ((1.0 - p.clamp(0.0, 1.0)) * BITS as f64) as u64;
        self.draw(BITS - 1) >= threshold
    }

    /// A uniformly random value of a primitive type; shrinks toward
    /// zero / `false`.
    pub fn any<T: CtxSample + Bounded>(&mut self) -> T {
        let (lo, hi) = T::FULL_RANGE;
        T::sample_ctx(self, lo, hi)
    }

    /// A uniformly random `bool`; shrinks toward `false`.
    pub fn any_bool(&mut self) -> bool {
        self.draw(1) == 1
    }

    /// Chooses an alternative index in `0..n`; shrinks toward the first
    /// alternative, so put leaves before recursive arms.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn choose(&mut self, n: usize) -> usize {
        assert!(n > 0, "Ctx::choose of zero alternatives");
        self.draw(n as u64 - 1) as usize
    }

    /// A vector with a length drawn from `len`, elements from `f`;
    /// shrinks by trimming.
    pub fn vec_of<T>(
        &mut self,
        len: impl SampleRange<usize>,
        mut f: impl FnMut(&mut Ctx) -> T,
    ) -> Vec<T> {
        let n = self.gen_range(len);
        (0..n).map(|_| f(self)).collect()
    }

    /// A string of length drawn from `len` over the given alphabet
    /// (replacement for simple regex strategies such as `[a-z ]{0,6}`).
    pub fn string_of(&mut self, alphabet: &str, len: impl SampleRange<usize>) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        assert!(!chars.is_empty(), "empty alphabet");
        let n = self.gen_range(len);
        (0..n).map(|_| chars[self.choose(chars.len())]).collect()
    }

    /// Random bytes; shrinks toward zeros.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for b in dest {
            *b = self.gen_range(0u8..=u8::MAX);
        }
    }
}

/// Types with compile-time full-range bounds, for [`Ctx::any`].
pub trait Bounded: Sized {
    /// `(MIN, MAX)`.
    const FULL_RANGE: (Self, Self);
}

macro_rules! bounded {
    ($($t:ty),*) => {$(
        impl Bounded for $t {
            const FULL_RANGE: (Self, Self) = (<$t>::MIN, <$t>::MAX);
        }
    )*};
}
bounded!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer sampling through the recorded choice stream.
pub trait CtxSample: SampleUniform {
    /// A uniform value in `lo..=hi` drawn through `ctx`.
    fn sample_ctx(ctx: &mut Ctx, lo: Self, hi: Self) -> Self;
}

macro_rules! ctx_sample_unsigned {
    ($($t:ty),*) => {$(
        impl CtxSample for $t {
            fn sample_ctx(ctx: &mut Ctx, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(ctx.draw(span) as $t)
            }
        }
    )*};
}
ctx_sample_unsigned!(u8, u16, u32, u64, usize);

/// Maps choice `c` into `lo..=hi` (which must contain 0) so that
/// `0 ↦ 0, 1 ↦ 1, 2 ↦ -1, 3 ↦ 2, …` — the zig-zag ordering that makes
/// halving a choice shrink a signed value toward zero.
fn zigzag(c: u64, lo: i64, hi: i64) -> i64 {
    debug_assert!(lo <= 0 && hi >= 0);
    if c == 0 {
        return 0;
    }
    let pos = hi as u64;
    let neg = lo.unsigned_abs();
    let k = c - 1;
    let m = pos.min(neg);
    if k < 2 * m {
        let step = (k / 2 + 1) as i64;
        if k % 2 == 0 {
            step
        } else {
            -step
        }
    } else if pos > neg {
        (m + (k - 2 * m) + 1) as i64
    } else {
        -(((m + (k - 2 * m) + 1)) as i64)
    }
}

macro_rules! ctx_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl CtxSample for $t {
            fn sample_ctx(ctx: &mut Ctx, lo: Self, hi: Self) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                let c = ctx.draw(span);
                if lo <= 0 && hi >= 0 {
                    if span < u64::MAX {
                        zigzag(c, lo as i64, hi as i64) as $t
                    } else {
                        // Full 64-bit range: plain zig-zag decode.
                        (((c >> 1) as i64) ^ -((c & 1) as i64)) as $t
                    }
                } else {
                    lo.wrapping_add(c as $t)
                }
            }
        }
    )*};
}
ctx_sample_signed!(i8 => u8, i16 => u16, i32 => u32);
ctx_sample_signed!(i64 => u64, isize => usize);

// ---------------------------------------------------------------------------
// Panic capture
// ---------------------------------------------------------------------------

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs the property once in fresh mode; returns the recorded choices
/// and the failure message if it failed.
fn run_fresh(
    prop: &mut dyn FnMut(&mut Ctx),
    seed: u64,
) -> Result<(), (Vec<u64>, String)> {
    let mut rng = TestRng::seed_from_u64(seed);
    let mut ctx = Ctx::fresh(&mut rng);
    QUIET.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| prop(&mut ctx)));
    QUIET.with(|q| q.set(false));
    match result {
        Ok(()) => Ok(()),
        Err(payload) => Err((ctx.record, payload_message(payload.as_ref()))),
    }
}

/// Replays a choice stream; returns the failure message if it failed.
fn run_replay(prop: &mut dyn FnMut(&mut Ctx), choices: &[u64]) -> Result<(), String> {
    let mut ctx = Ctx::replay(choices);
    QUIET.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| prop(&mut ctx)));
    QUIET.with(|q| q.set(false));
    match result {
        Ok(()) => Ok(()),
        Err(payload) => Err(payload_message(payload.as_ref())),
    }
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// Deterministically minimises a failing choice stream. Returns the
/// minimal stream, its failure message, and the number of evaluations
/// spent.
fn shrink(
    prop: &mut dyn FnMut(&mut Ctx),
    mut best: Vec<u64>,
    mut msg: String,
    budget: u32,
) -> (Vec<u64>, String, u32) {
    let mut evals = 0u32;
    let mut try_candidate =
        |cand: &[u64], evals: &mut u32| -> Option<String> {
            if *evals >= budget {
                return None;
            }
            *evals += 1;
            run_replay(prop, cand).err()
        };

    loop {
        let mut improved = false;

        // Pass 1: trim chunks — shrinks vectors and recursion depth.
        // (Replaying a shortened stream pads with zero choices, which
        // select leaf alternatives and empty collections.)
        let mut k = best.len().max(1).next_power_of_two();
        while k >= 1 {
            let mut i = 0;
            while i + k <= best.len() {
                let mut cand = Vec::with_capacity(best.len() - k);
                cand.extend_from_slice(&best[..i]);
                cand.extend_from_slice(&best[i + k..]);
                if let Some(m) = try_candidate(&cand, &mut evals) {
                    best = cand;
                    msg = m;
                    improved = true;
                    // Retry at the same position (new content slid in).
                } else {
                    i += k;
                }
                if evals >= budget {
                    return (best, msg, evals);
                }
            }
            k /= 2;
        }

        // Pass 2: minimise individual choices — zero, then repeated
        // halving, then decrement.
        for i in 0..best.len() {
            if best[i] == 0 {
                continue;
            }
            let original = best[i];
            // Zero first (the biggest jump).
            best[i] = 0;
            if let Some(m) = try_candidate(&best.clone(), &mut evals) {
                msg = m;
                improved = true;
                continue;
            }
            best[i] = original;
            // Binary-search the smallest failing value in (0, original].
            let mut lo = 0u64; // known passing
            let mut hi = original; // known failing
            while hi - lo > 1 && evals < budget {
                let mid = lo + (hi - lo) / 2;
                best[i] = mid;
                if let Some(m) = try_candidate(&best.clone(), &mut evals) {
                    msg = m;
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            if hi != original {
                improved = true;
            }
            best[i] = hi;
            // Step-down ladders: decrementing by 2 preserves the sign
            // parity of zig-zag-encoded signed values, so this walks a
            // signed counterexample down to its exact boundary; the
            // final decrement-by-1 catches the unsigned off-by-one.
            for delta in [2u64, 1] {
                while best[i] >= delta && evals < budget {
                    best[i] -= delta;
                    if let Some(m) = try_candidate(&best.clone(), &mut evals) {
                        msg = m;
                        improved = true;
                    } else {
                        best[i] += delta;
                        break;
                    }
                }
            }
            if evals >= budget {
                return (best, msg, evals);
            }
        }

        if !improved {
            return (best, msg, evals);
        }
    }
}

/// Deterministically minimises a failing choice stream without going
/// through a panicking property: `fails` replays a candidate stream
/// (via [`Ctx::replaying`]) and reports whether the failure is still
/// present. Returns the minimal still-failing stream.
///
/// This is the shrinker the campaign engine's triage step uses: the
/// same chunk-trimming and choice-halving passes as [`check`], but
/// driven by a plain predicate so disagreements (not just panics) can
/// be minimised.
#[must_use]
pub fn shrink_choices(
    mut fails: impl FnMut(&mut Ctx) -> bool,
    start: Vec<u64>,
    budget: u32,
) -> Vec<u64> {
    install_quiet_hook();
    let mut prop = |ctx: &mut Ctx| {
        assert!(!fails(ctx), "still failing");
    };
    let (best, _msg, _evals) = shrink(&mut prop, start, "still failing".into(), budget);
    best
}

// ---------------------------------------------------------------------------
// Regression persistence
// ---------------------------------------------------------------------------

fn read_regression_seeds(path: &Path, name: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some(name) {
            continue;
        }
        if let Some(kv) = parts.next() {
            if let Some(raw) = kv.strip_prefix("seed=") {
                if let Some(seed) = crate::parse_seed(raw) {
                    seeds.push(seed);
                }
            }
        }
    }
    seeds
}

fn persist_regression_seed(path: &Path, name: &str, seed: u64, summary: &str) {
    if read_regression_seeds(path, name).contains(&seed) {
        return;
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let header = if path.exists() {
        String::new()
    } else {
        "# testkit regression seeds. Each line is `<test> seed=<n> # <summary>`.\n\
         # These cases re-run before any fresh random cases; check this file in\n\
         # to source control so every run benefits from past failures.\n"
            .to_string()
    };
    let summary: String = summary
        .lines()
        .next()
        .unwrap_or("")
        .chars()
        .take(160)
        .collect();
    let line = format!("{header}{name} seed={seed:#x} # {summary}\n");
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = f.write_all(line.as_bytes());
    }
}

// ---------------------------------------------------------------------------
// The runner
// ---------------------------------------------------------------------------

fn fail_case(
    cfg: &Config,
    prop: &mut dyn FnMut(&mut Ctx),
    origin: &str,
    seed: u64,
    choices: Vec<u64>,
    msg: String,
    persist: bool,
) -> ! {
    let (min_choices, min_msg, evals) =
        shrink(prop, choices, msg, cfg.max_shrink_evals);
    if persist {
        if let Some(path) = &cfg.regressions {
            persist_regression_seed(path, cfg.name, seed, &min_msg);
        }
    }
    let repro = format!(
        "TESTKIT_CASE_SEED={seed:#x} cargo test -q -p {} {}",
        if cfg.pkg.is_empty() { "<pkg>" } else { cfg.pkg },
        cfg.name
    );
    panic!(
        "property `{name}` failed ({origin}, seed {seed:#x}).\n\
         minimal counterexample after {evals} shrink evals \
         ({n} choices): {min_msg}\n\
         reproduce with: {repro}",
        name = cfg.name,
        n = min_choices.len(),
    );
}

/// Checks a property: replays persisted regression seeds, then runs
/// `cfg.cases` fresh cases with seeds derived from the master seed.
/// On failure the choice stream is shrunk, the seed persisted, and a
/// one-line reproduction command printed.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when the property fails.
pub fn check(cfg: Config, mut prop: impl FnMut(&mut Ctx)) {
    install_quiet_hook();
    let prop: &mut dyn FnMut(&mut Ctx) = &mut prop;

    // Single-case replay mode.
    if let Ok(raw) = std::env::var("TESTKIT_CASE_SEED") {
        let seed = crate::parse_seed(&raw)
            .unwrap_or_else(|| panic!("unparseable TESTKIT_CASE_SEED: {raw:?}"));
        if let Err((choices, msg)) = run_fresh(prop, seed) {
            fail_case(&cfg, prop, "TESTKIT_CASE_SEED", seed, choices, msg, false);
        }
        return;
    }

    // Regression seeds first.
    if let Some(path) = cfg.regressions.clone() {
        for seed in read_regression_seeds(&path, cfg.name) {
            if let Err((choices, msg)) = run_fresh(prop, seed) {
                fail_case(&cfg, prop, "regression seed", seed, choices, msg, false);
            }
        }
    }

    // Fresh cases, seeds derived from the master seed and the property
    // name so sibling properties explore independent streams.
    let cases = std::env::var("TESTKIT_CASES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(cfg.cases);
    let mut name_hash = SplitMix64::new(
        cfg.name.bytes().fold(0xCBF2_9CE4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3)
        }),
    );
    let mut seeder = SplitMix64::new(crate::master_seed() ^ name_hash.next_u64());
    for case in 0..cases {
        let seed = seeder.next_u64();
        if let Err((choices, msg)) = run_fresh(prop, seed) {
            let origin = format!("case {case}/{cases}");
            fail_case(&cfg, prop, &origin, seed, choices, msg, true);
        }
    }
}

/// Declares property-based `#[test]` functions.
///
/// ```ignore
/// testkit::props! {
///     #![cases = 96]
///     /// Doc comments and attributes are allowed.
///     fn addition_commutes(ctx) {
///         let a = ctx.any::<u32>();
///         let b = ctx.any::<u32>();
///         assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
///
/// Each generated test persists regression seeds next to its source
/// file (`tests/<stem>.testkit-regressions`) and prints a one-line
/// reproduction command on failure.
#[macro_export]
macro_rules! props {
    (@run $cases:expr; $( $(#[$meta:meta])* fn $name:ident($ctx:ident) $body:block )* ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let cfg = $crate::prop::Config::new(stringify!($name))
                    .pkg(env!("CARGO_PKG_NAME"))
                    .default_cases($cases)
                    .regressions_for(env!("CARGO_MANIFEST_DIR"), file!());
                $crate::prop::check(cfg, |$ctx: &mut $crate::prop::Ctx| $body);
            }
        )*
    };
    (#![cases = $cases:expr] $($rest:tt)*) => {
        $crate::props! { @run $cases; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::props! { @run 0u32; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_orders_toward_zero() {
        assert_eq!(zigzag(0, -32, 31), 0);
        assert_eq!(zigzag(1, -32, 31), 1);
        assert_eq!(zigzag(2, -32, 31), -1);
        assert_eq!(zigzag(3, -32, 31), 2);
        // All 64 values of -32..=31 are hit exactly once.
        let mut seen: Vec<i64> = (0..64).map(|c| zigzag(c, -32, 31)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (-32..=31).collect::<Vec<_>>());
        // Asymmetric range.
        let mut seen: Vec<i64> = (0..=12).map(|c| zigzag(c, -2, 10)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (-2..=10).collect::<Vec<_>>());
    }

    #[test]
    fn passing_property_passes() {
        check(Config::new("tautology").cases(50), |ctx| {
            let v = ctx.gen_range(0u32..100);
            assert!(v < 100);
        });
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        // v >= 500 fails; minimal failing value is exactly 500.
        let result = panic::catch_unwind(|| {
            check(Config::new("boundary").cases(200), |ctx| {
                let v = ctx.gen_range(0u32..1000);
                assert!(v < 500, "counterexample v={v}");
            });
        });
        let msg = payload_message(result.unwrap_err().as_ref());
        assert!(msg.contains("v=500"), "expected minimal v=500, got: {msg}");
        assert!(msg.contains("reproduce with:"), "missing repro line: {msg}");
    }

    #[test]
    fn shrinking_trims_vectors() {
        // Fails when the vec contains any element >= 10; minimal failure
        // is a single-element vec [10].
        let result = panic::catch_unwind(|| {
            check(Config::new("trim").cases(200), |ctx| {
                let xs = ctx.vec_of(0usize..20, |c| c.gen_range(0u32..100));
                assert!(
                    xs.iter().all(|&x| x < 10),
                    "counterexample {xs:?} (len {})",
                    xs.len()
                );
            });
        });
        let msg = payload_message(result.unwrap_err().as_ref());
        assert!(msg.contains("[10] (len 1)"), "expected [10], got: {msg}");
    }

    #[test]
    fn shrinking_reduces_recursive_structures() {
        #[derive(Debug)]
        enum T {
            Leaf(i32),
            Node(Box<T>, Box<T>),
        }
        fn gen_t(ctx: &mut Ctx, depth: u32) -> T {
            if depth == 0 || ctx.choose(3) == 0 {
                T::Leaf(ctx.gen_range(-50i32..=50))
            } else {
                T::Node(Box::new(gen_t(ctx, depth - 1)), Box::new(gen_t(ctx, depth - 1)))
            }
        }
        fn count(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 1,
                T::Node(a, b) => count(a) + count(b),
            }
        }
        fn has_big(t: &T) -> bool {
            match t {
                T::Leaf(v) => *v >= 40,
                T::Node(a, b) => has_big(a) || has_big(b),
            }
        }
        let result = panic::catch_unwind(|| {
            check(Config::new("ast").cases(400), |ctx| {
                let t = gen_t(ctx, 5);
                assert!(!has_big(&t), "counterexample nodes={} {t:?}", count(&t));
            });
        });
        let msg = payload_message(result.unwrap_err().as_ref());
        // The minimal counterexample is a single leaf at the boundary.
        assert!(
            msg.contains("nodes=1 Leaf(40)"),
            "expected single Leaf(40), got: {msg}"
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let mut outputs = Vec::new();
        for _ in 0..2 {
            let mut rng = TestRng::seed_from_u64(99);
            let mut ctx = Ctx::fresh(&mut rng);
            let v: Vec<u32> = (0..10).map(|_| ctx.gen_range(0u32..1000)).collect();
            let rec = ctx.record.clone();
            let mut rctx = Ctx::replay(&rec);
            let w: Vec<u32> = (0..10).map(|_| rctx.gen_range(0u32..1000)).collect();
            assert_eq!(v, w, "replay must reproduce fresh generation");
            outputs.push(v);
        }
        assert_eq!(outputs[0], outputs[1]);
    }

    #[test]
    fn shrink_choices_minimises_predicate_failures() {
        // Record a real generation so the stream is plausible.
        let mut rng = TestRng::seed_from_u64(1234);
        let (start, v) = loop {
            let mut ctx = Ctx::recording(&mut rng);
            let v = ctx.gen_range(0u32..10_000);
            if v >= 700 {
                break (ctx.recorded_choices().to_vec(), v);
            }
        };
        assert!(v >= 700);
        let min = shrink_choices(
            |ctx| ctx.gen_range(0u32..10_000) >= 700,
            start,
            2_000,
        );
        let mut ctx = Ctx::replaying(&min);
        assert_eq!(ctx.gen_range(0u32..10_000), 700, "minimal failing value");
    }

    #[test]
    fn recording_and_replaying_round_trip_publicly() {
        let mut rng = TestRng::seed_from_u64(5);
        let mut ctx = Ctx::recording(&mut rng);
        let a = ctx.gen_range(0u64..=u64::MAX);
        let b = ctx.choose(17);
        let rec = ctx.recorded_choices().to_vec();
        let mut rctx = Ctx::replaying(&rec);
        assert_eq!(rctx.gen_range(0u64..=u64::MAX), a);
        assert_eq!(rctx.choose(17), b);
    }

    #[test]
    fn regression_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "testkit-regr-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("x.testkit-regressions");
        let _ = std::fs::remove_file(&path);
        persist_regression_seed(&path, "my_test", 0xABCD, "boom\nsecond line");
        persist_regression_seed(&path, "my_test", 0xABCD, "boom"); // dedup
        persist_regression_seed(&path, "other_test", 7, "pow");
        assert_eq!(read_regression_seeds(&path, "my_test"), vec![0xABCD]);
        assert_eq!(read_regression_seeds(&path, "other_test"), vec![7]);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("my_test").count(), 1);
        assert!(!text.contains("second line"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
