//! Crash-resume equivalence harness.
//!
//! A checkpoint format is only trustworthy if a run killed at an
//! arbitrary point and resumed from its last checkpoint is
//! *indistinguishable* from the uninterrupted run. This module states
//! that as a reusable obligation over three closures — run to
//! completion, kill-and-checkpoint at a point, resume from a
//! checkpoint — keeping `testkit` free of any dependency on the
//! snapshot format itself (the stack crates plug their types into `S`
//! and `R`).
//!
//! The verdict is a `Result` with a rendered report rather than a
//! panic, so property suites can layer shrinking on top and campaign
//! targets can embed the message in their failure verdicts.

use std::fmt::Debug;

/// Proves crash-resume equivalence at every kill point in
/// `kill_points`.
///
/// * `baseline()` — the uninterrupted run's observable outcome.
/// * `checkpoint(k)` — simulate a crash at kill point `k`: run the
///   workload up to `k`, capture a checkpoint, and *drop everything
///   else* (the continuation must come from the checkpoint alone).
/// * `resume(s)` — resume from checkpoint `s` to completion.
///
/// The outcome type `R` should carry everything the caller claims is
/// preserved (exit code, output streams, retire counts, stats): the
/// comparison is `PartialEq` on the whole value.
///
/// # Errors
///
/// The first kill point whose resumed outcome differs from the
/// baseline, with both values rendered via `Debug`.
pub fn crash_resume_equiv<S, R>(
    kill_points: &[u64],
    baseline: impl Fn() -> R,
    checkpoint: impl Fn(u64) -> S,
    resume: impl Fn(S) -> R,
) -> Result<(), String>
where
    R: PartialEq + Debug,
{
    let expected = baseline();
    for &k in kill_points {
        let resumed = resume(checkpoint(k));
        if resumed != expected {
            return Err(format!(
                "crash-resume divergence at kill point {k}:\n  uninterrupted: {expected:?}\n  resumed:       {resumed:?}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy deterministic workload: iterate `x := 3x + 1 mod 2^32`
    /// from a seed, N times. The checkpoint is (current x, steps done).
    fn iterate(mut x: u32, steps: u64) -> u32 {
        for _ in 0..steps {
            x = x.wrapping_mul(3).wrapping_add(1);
        }
        x
    }

    #[test]
    fn correct_resume_passes_at_every_kill_point() {
        const TOTAL: u64 = 1000;
        let kill_points: Vec<u64> = (0..=TOTAL).step_by(137).collect();
        crash_resume_equiv(
            &kill_points,
            || iterate(7, TOTAL),
            |k| (iterate(7, k), k),
            |(x, k)| iterate(x, TOTAL - k),
        )
        .expect("a correct checkpoint/resume pair is equivalent");
    }

    #[test]
    fn lossy_checkpoint_is_caught_and_named() {
        const TOTAL: u64 = 100;
        let err = crash_resume_equiv(
            &[50],
            || iterate(7, TOTAL),
            |k| (iterate(7, k) & !1, k), // drops the low bit: lossy
            |(x, k)| iterate(x, TOTAL - k),
        )
        .expect_err("a lossy checkpoint must be caught");
        assert!(err.contains("kill point 50"), "{err}");
        assert!(err.contains("uninterrupted"), "{err}");
    }
}
