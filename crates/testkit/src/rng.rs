//! Deterministic pseudo-random number generation.
//!
//! [`TestRng`] is xoshiro256** seeded through SplitMix64 — the standard
//! construction for expanding a 64-bit seed into a full 256-bit state
//! without correlated lanes. The [`Rng`] trait mirrors the `rand`
//! surface the workspace actually uses so call sites migrate with a
//! `use` swap: `gen_range` over half-open and inclusive integer ranges,
//! `gen_bool`, `gen::<T>()` for primitive types, and `fill_bytes`.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny, well-mixed 64-bit generator used to expand seeds.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workhorse generator: xoshiro256**.
///
/// Fast, 256 bits of state, passes BigCrush; identical output on every
/// platform and toolchain (no `HashMap`-style per-process randomness).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Expands a 64-bit seed into a full generator state via SplitMix64.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        TestRng { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Seeds from `TESTKIT_SEED` (decimal or `0x…`), falling back to the
    /// fixed default so runs are deterministic without configuration.
    #[must_use]
    pub fn from_env() -> Self {
        TestRng::seed_from_u64(crate::master_seed())
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// The `rand`-mirroring generator surface.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 bits of precision, like rand's Bernoulli.
        let threshold = (p * (1u64 << 53) as f64) as u64;
        (self.next_u64() >> 11) < threshold
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Arbitrary>(&mut self) -> T
    where
        Self: Sized,
    {
        T::arbitrary(self)
    }

    /// A uniform value in `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let (lo, hi) = range.bounds_inclusive();
        T::sample_inclusive(self, lo, hi)
    }
}

/// Uniform draw of `span + 1` values (i.e. `0..=span`) without modulo
/// bias, by rejection against a power-of-two mask.
pub(crate) fn draw_below_inclusive<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        // A single-value span draws nothing: `1u64.next_power_of_two()`
        // is 1, whose mask of 0 the loop below would mistake for "all
        // 64 bits", waiting for a full-width draw to land on 0.
        return 0;
    }
    if span == u64::MAX {
        return rng.next_u64();
    }
    let n = span + 1;
    let mask = n.next_power_of_two().wrapping_sub(1);
    loop {
        let v = rng.next_u64() & mask;
        if v < n {
            return v;
        }
    }
}

/// Types with a full-width uniform distribution.
pub trait Arbitrary: Sized {
    /// Draws a uniformly random value.
    fn arbitrary<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types that support uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform value in `lo..=hi`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Predecessor, for converting `a..b` into `a..=b-1`.
    fn prev(self) -> Self;
}

macro_rules! uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(draw_below_inclusive(rng, span) as $t)
            }
            fn prev(self) -> Self { self - 1 }
        }
    )*};
}
uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(draw_below_inclusive(rng, span) as $t)
            }
            fn prev(self) -> Self { self - 1 }
        }
    )*};
}
uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// The inclusive `(lo, hi)` bounds.
    fn bounds_inclusive(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn bounds_inclusive(self) -> (T, T) {
        (self.start, self.end.prev())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn bounds_inclusive(self) -> (T, T) {
        self.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_clones() {
        let mut a = TestRng::seed_from_u64(42);
        let mut b = TestRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn degenerate_spans_terminate() {
        // `span == 0` must return immediately (a mask of 0 bits), not
        // reject full-width draws until one lands on 0.
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..64 {
            assert_eq!(draw_below_inclusive(&mut rng, 0), 0);
        }
        assert_eq!(rng.gen_range(9u64..=9), 9);
        assert_eq!(rng.gen_range(-5i32..=-5), -5);
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for SplitMix64 with seed 1234567
        // (from the public-domain reference implementation).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_are_bounded_and_cover() {
        let mut rng = TestRng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..500 {
            let v = rng.gen_range(1u32..6);
            assert!((1..6).contains(&v));
            seen[v as usize] = true;
            let s = rng.gen_range(-32i8..=31);
            assert!((-32..=31).contains(&s));
        }
        assert!(seen[1..5].iter().all(|&b| b));
    }

    #[test]
    fn full_width_signed_range() {
        let mut rng = TestRng::seed_from_u64(9);
        for _ in 0..100 {
            let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
            let _: u64 = rng.gen_range(0u64..=u64::MAX);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = TestRng::seed_from_u64(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "p=0.5 gave {heads}/10000");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = TestRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn parse_seed_formats() {
        assert_eq!(crate::parse_seed("42"), Some(42));
        assert_eq!(crate::parse_seed("0x2a"), Some(42));
        assert_eq!(crate::parse_seed(" 0X2A "), Some(42));
        assert_eq!(crate::parse_seed("nope"), None);
    }
}
