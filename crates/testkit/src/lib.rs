//! Hermetic test infrastructure for the silver-stack workspace.
//!
//! The paper's substitution rule turns every HOL theorem into an
//! *executable differential-testing obligation*, which makes the test
//! harness the proof layer of this reproduction. That layer must be
//! deterministic (two runs with the same seed must produce the same
//! verdicts and the same shrunk counterexamples) and fully offline (the
//! build environment has no registry access). `testkit` therefore
//! replaces `rand`, `proptest` and `criterion` with four small,
//! zero-dependency subsystems:
//!
//! * [`rng`] — a SplitMix64-seeded xoshiro256** PRNG behind a [`Rng`]
//!   trait mirroring the `rand` surface the workspace uses
//!   (`gen_range`, `gen_bool`, `gen`, `fill_bytes`), seedable from the
//!   `TESTKIT_SEED` environment variable.
//! * [`prop`] — a property-testing harness with sized generators,
//!   *integrated shrinking* over the recorded choice stream (halving
//!   for integers, trimming for collections and recursive AST-shaped
//!   data), per-test case budgets and regression-seed persistence to
//!   `*.testkit-regressions` files.
//! * [`bench`] — a wall-clock bench timer (warmup + N samples,
//!   median/p95) with JSON-lines output for `BENCH_*.json` records.
//! * [`par`] — a `std::thread` fan-out helper so differential suites
//!   can run seeds across cores.
//! * [`pool`] — a bounded work queue plus a restartable worker pool
//!   (the long-lived dual of [`par`]'s batch shape) for server-style
//!   consumers such as the execution service.
//!
//! On top of these, [`crash`] states crash-resume equivalence — "a run
//! killed at an arbitrary point and resumed from its checkpoint is
//! indistinguishable from the uninterrupted run" — as a reusable,
//! format-agnostic obligation for the snapshot/replay layer.
//!
//! # Environment knobs
//!
//! | variable | effect |
//! |---|---|
//! | `TESTKIT_SEED` | master seed for all property tests (decimal or `0x…`) |
//! | `TESTKIT_CASES` | overrides the number of random cases per property |
//! | `TESTKIT_CASE_SEED` | replays exactly one case with this seed (printed by failures) |
//! | `TESTKIT_THREADS` | thread count for [`par`] fan-out |
//! | `BENCH_OUT` | path for bench JSON-lines output (default `BENCH_<suite>.json`) |

pub mod bench;
pub mod crash;
pub mod par;
pub mod pool;
pub mod prop;
pub mod rng;

pub use crash::crash_resume_equiv;
pub use pool::{WorkQueue, WorkerCtl, WorkerPool};
pub use prop::{check, shrink_choices, Config, Ctx};
pub use rng::{Rng, SplitMix64, TestRng};

/// Parses a seed that may be decimal or `0x`-prefixed hexadecimal.
#[must_use]
pub fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The master seed: `TESTKIT_SEED` if set, else a fixed default so runs
/// are deterministic out of the box.
#[must_use]
pub fn master_seed() -> u64 {
    std::env::var("TESTKIT_SEED")
        .ok()
        .and_then(|s| parse_seed(&s))
        .unwrap_or(0x5EED_CAFE_F00D_0001)
}
