//! `std::thread` fan-out for differential suites.
//!
//! Lockstep and end-to-end checks are embarrassingly parallel across
//! seeds; [`par_map`] spreads them over the machine's cores (or
//! `TESTKIT_THREADS`) with a work-stealing index, preserving input
//! order in the result. Worker panics propagate to the caller so a
//! failing seed still fails the enclosing test.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The fan-out width: `TESTKIT_THREADS`, else available parallelism,
/// at least 1.
#[must_use]
pub fn num_threads() -> usize {
    std::env::var("TESTKIT_THREADS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
}

/// Applies `f` to every item on up to [`num_threads`] worker threads,
/// returning results in input order.
///
/// # Panics
///
/// Re-raises the first worker panic (after all workers have stopped),
/// so assertion failures inside `f` behave like sequential ones.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = num_threads().min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("work item taken twice");
                let r = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            }));
        }
        let mut first_panic = None;
        for h in handles {
            if let Err(p) = h.join() {
                first_panic.get_or_insert(p);
            }
        }
        if let Some(p) = first_panic {
            std::panic::resume_unwind(p);
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot poisoned").expect("worker filled slot"))
        .collect()
}

/// Runs `f` once per seed across threads — the common shape of
/// differential lockstep suites.
///
/// # Panics
///
/// Propagates the first failing seed's panic.
pub fn for_each_seed<F>(seeds: impl IntoIterator<Item = u64>, f: F)
where
    F: Fn(u64) + Sync,
{
    let seeds: Vec<u64> = seeds.into_iter().collect();
    let _unit: Vec<()> = par_map(seeds, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100u64).collect(), |x| x * 2);
        assert_eq!(out, (0..100u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn propagates_panics() {
        let r = std::panic::catch_unwind(|| {
            par_map((0..8u64).collect(), |x| {
                assert!(x != 5, "seed 5 fails");
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn for_each_seed_runs_all() {
        use std::sync::atomic::AtomicU64;
        let sum = AtomicU64::new(0);
        for_each_seed(1..=10, |s| {
            sum.fetch_add(s, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
