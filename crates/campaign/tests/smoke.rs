//! Campaign-engine smoke tests (ISSUE acceptance): determinism of the
//! JSON report under a fixed seed, and the full
//! detect → bisect-to-layer → minimise → repro pipeline on a
//! deliberately broken target.

use std::path::PathBuf;

use campaign::coverage::CovSnap;
use campaign::targets::{CaseOutcome, Target, Verdict};
use campaign::{registry, run_campaign, Budget, CampaignConfig};
use testkit::prop::Ctx;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("campaign-smoke-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn same_seed_and_budget_give_byte_identical_reports() {
    let cfg = CampaignConfig {
        seed: 1,
        shards: 2,
        budget: Budget::Cases(200),
        triage: false,
        ..CampaignConfig::default()
    };
    let targets = registry("t2").expect("t2 registry");
    let a = run_campaign(&targets, &cfg);
    let b = run_campaign(&targets, &cfg);
    assert_eq!(a.cases, 200);
    assert_eq!(a.json_lines(), b.json_lines(), "report is not a pure function of the seed");

    // A different seed explores a different path (the reports differ).
    let c = run_campaign(&targets, &CampaignConfig { seed: 2, ..cfg });
    assert_ne!(a.json_lines(), c.json_lines());
}

#[test]
fn shard_count_does_not_change_throughput_accounting() {
    // Same seed, 1 vs 2 shards: the schedules differ by construction
    // (case seeds mix in the shard index), but both must be internally
    // deterministic and complete the exact case budget.
    let targets = registry("t9").expect("t9 registry");
    for shards in [1usize, 2] {
        let cfg = CampaignConfig {
            seed: 7,
            shards,
            budget: Budget::Cases(40),
            triage: false,
            ..CampaignConfig::default()
        };
        let r1 = run_campaign(&targets, &cfg);
        let r2 = run_campaign(&targets, &cfg);
        assert_eq!(r1.cases, 40);
        assert_eq!(r1.json_lines(), r2.json_lines());
        assert!(r1.failures.is_empty(), "{:?}", r1.failures);
    }
}

/// A deliberately broken "relation": the implementation side disagrees
/// with the spec whenever the drawn operand is at least 600. The
/// minimal counterexample is therefore the single choice `[600]`
/// (0x258), and the diverging layer is known in advance.
struct BrokenAdder;

impl Target for BrokenAdder {
    fn name(&self) -> &'static str {
        "broken-adder"
    }

    fn run_case(&self, ctx: &mut Ctx) -> CaseOutcome {
        let v: u64 = ctx.gen_range(0u64..4_000);
        let noise: u64 = ctx.gen_range(0u64..64); // extra draw for the shrinker to discard
        let spec = v + 1;
        let impl_ = if v >= 600 { v } else { v + 1 }; // the injected bug
        let mut cov = CovSnap::new();
        // Tie coverage to the value so the corpus has something to keep.
        cov.features.insert(cakeml::Feature::ALL[(v % 32) as usize]);
        let _ = noise;
        if spec == impl_ {
            CaseOutcome { cov, verdict: Verdict::Pass, fuel_saved: None }
        } else {
            CaseOutcome {
                cov,
                verdict: Verdict::Fail {
                    layer: "isa vs source".into(),
                    message: format!("add({v}) = {impl_}, expected {spec}"),
                },
                fuel_saved: None,
            }
        }
    }
}

#[test]
fn injected_bug_is_caught_triaged_and_minimised() {
    let corpus_dir = scratch("corpus");
    let regressions = scratch("reg").join("campaign.testkit-regressions");
    let cfg = CampaignConfig {
        seed: 3,
        shards: 2,
        budget: Budget::Cases(200),
        corpus_dir: Some(corpus_dir.clone()),
        triage: true,
        triage_budget: 2_000,
        regressions_path: Some(regressions.clone()),
        ..CampaignConfig::default()
    };
    let targets: Vec<Box<dyn Target>> = vec![Box::new(BrokenAdder)];
    let report = run_campaign(&targets, &cfg);

    // Detected: values >= 600 are drawn with probability 0.85 per case.
    assert!(!report.failures.is_empty(), "the injected bug escaped 200 cases");
    let rec = &report.failures[0];

    // Bisected: the failing layer pair is named.
    assert_eq!(rec.layer, "isa vs source");

    // Minimised: the counterexample shrank to the boundary value.
    let min = rec.minimized.as_ref().expect("triage minimised the first failure");
    assert_eq!(min.first().copied(), Some(600), "not shrunk to the boundary: {min:?}");

    // Replayable: the repro line names the target and the choice stream.
    let repro = rec.repro.as_deref().expect("triage attached a repro line");
    assert!(
        repro.starts_with("silver-fuzz --target broken-adder --replay broken-adder:258"),
        "unexpected repro line: {repro}"
    );

    // Persisted: the regressions file holds the triaged line...
    let reg_text = std::fs::read_to_string(&regressions).expect("regressions file written");
    assert!(reg_text.contains("broken-adder replay=258"), "{reg_text}");

    // ...and the corpus directory holds replayable seed files.
    assert!(report.corpus_len > 0);
    let seeds = std::fs::read_dir(&corpus_dir).expect("corpus dir").count();
    assert!(seeds > 0, "no seed files persisted");

    let _ = std::fs::remove_dir_all(&corpus_dir);
    let _ = std::fs::remove_dir_all(regressions.parent().expect("parent"));
}
