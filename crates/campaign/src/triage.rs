//! Failure triage: layer bisection, minimisation, one-line repros.
//!
//! The bisection itself happens inside the targets: each compares
//! adjacent layers top-down (source → ISA → RTL → Verilog) — plus the
//! engine axis within the ISA layer (`jet vs isa`, the `t-jet` target's
//! reference-interpreter ↔ translation-cache comparison) — so the
//! layer named by a [`Verdict::Fail`](crate::targets::Verdict) is
//! already the first diverging pair. A `jet vs isa` failure therefore
//! means the jet *engine* is wrong, never the compiler or circuit: both
//! sides execute the same ISA semantics. Triage's job is (a) shrinking the
//! failing choice stream with the testkit minimiser, (b) re-running the
//! minimal case to refresh the layer attribution (shrinking can move a
//! failure to an earlier layer — that's the point), and (c) emitting a
//! one-line `silver-fuzz --replay` command, persisted to a
//! `*.testkit-regressions` file in the same spirit as the property
//! harness's seed files.

use std::io::{self, Write as _};
use std::path::Path;

use testkit::prop::Ctx;

use crate::report::FailureRecord;
use crate::targets::{Target, Verdict};

/// Shrinks `choices` to a minimal stream on which `target` still fails,
/// spending at most `budget` re-executions.
#[must_use]
pub fn minimise(target: &dyn Target, choices: &[u64], budget: u32) -> Vec<u64> {
    testkit::shrink_choices(
        |ctx| target.run_case(ctx).verdict.is_fail(),
        choices.to_vec(),
        budget,
    )
}

/// Renders the one-line reproduction command for a choice stream.
#[must_use]
pub fn repro_line(target: &str, choices: &[u64]) -> String {
    let hex: Vec<String> = choices.iter().map(|c| format!("{c:x}")).collect();
    format!("silver-fuzz --target {target} --replay {target}:{}", hex.join(","))
}

/// Parses a `--replay` argument: either `<target>:<hex,hex,...>` inline
/// or a path to a corpus seed file.
///
/// # Errors
///
/// A description of the malformed spec.
pub fn parse_replay(spec: &str) -> Result<(String, Vec<u64>), String> {
    if let Some((target, rest)) = spec.split_once(':') {
        let choices: Result<Vec<u64>, _> = rest
            .split(',')
            .filter(|w| !w.is_empty())
            .map(|w| u64::from_str_radix(w.trim(), 16))
            .collect();
        return match choices {
            Ok(c) => Ok((target.to_string(), c)),
            Err(e) => Err(format!("bad hex in replay spec: {e}")),
        };
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
    crate::corpus::CorpusEntry::parse(&text)
        .map(|e| (e.target, e.choices))
        .ok_or_else(|| format!("{spec} is not a seed file"))
}

/// Runs the full triage pipeline on a failure record: minimise, re-run
/// for layer attribution, attach the repro line.
///
/// Because the re-run goes through the target's own `run_case`, any
/// forensics the target attaches to failure messages (the t9/t10
/// targets append a full divergence report — divergent cycle, retire
/// tails, register deltas, VCD window) are regenerated *for the shrunk
/// case*: the minimal counterexample carries its own forensics.
pub fn triage_failure(target: &dyn Target, rec: &mut FailureRecord, budget: u32) {
    let min = minimise(target, &rec.choices, budget);
    let out = target.run_case(&mut Ctx::replaying(&min));
    if let Verdict::Fail { layer, message } = out.verdict {
        rec.layer = layer;
        rec.message = message;
    }
    rec.repro = Some(repro_line(&rec.target, &min));
    rec.minimized = Some(min);
}

/// Appends triaged failures to a `*.testkit-regressions` file: one
/// `<target> replay=<hex,...> # <layer>: <summary>` line each, so past
/// counterexamples stay replayable from source control.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn append_regressions(path: &Path, failures: &[FailureRecord]) -> io::Result<()> {
    let triaged: Vec<&FailureRecord> =
        failures.iter().filter(|f| f.minimized.is_some()).collect();
    if triaged.is_empty() {
        return Ok(());
    }
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    if f.metadata()?.len() == 0 {
        writeln!(
            f,
            "# silver-fuzz campaign counterexamples. Each line is\n\
             # `<target> replay=<hex,...> # <layer>: <summary>`; replay one with\n\
             # `silver-fuzz --target <target> --replay <target>:<hex,...>`."
        )?;
    }
    for rec in triaged {
        let min = rec.minimized.as_ref().expect("filtered to triaged");
        let hex: Vec<String> = min.iter().map(|c| format!("{c:x}")).collect();
        let summary: String =
            rec.message.lines().next().unwrap_or("").chars().take(120).collect();
        writeln!(f, "{} replay={} # {}: {}", rec.target, hex.join(","), rec.layer, summary)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::CovSnap;
    use crate::targets::CaseOutcome;

    /// A synthetic target that fails whenever its drawn value is at
    /// least 700 — the minimum failing stream is exactly `[700]`.
    struct Threshold;

    impl Target for Threshold {
        fn name(&self) -> &'static str {
            "threshold"
        }

        fn run_case(&self, ctx: &mut Ctx) -> CaseOutcome {
            let v: u64 = ctx.gen_range(0u64..10_000);
            let pad: u64 = ctx.gen_range(0u64..100); // irrelevant second draw
            let _ = pad;
            if v >= 700 {
                CaseOutcome {
                    cov: CovSnap::new(),
                    verdict: Verdict::Fail {
                        layer: "isa vs source".into(),
                        message: format!("value {v} over threshold"),
                    },
                    fuel_saved: None,
                }
            } else {
                CaseOutcome { cov: CovSnap::new(), verdict: Verdict::Pass, fuel_saved: None }
            }
        }
    }

    #[test]
    fn minimise_finds_the_boundary() {
        let min = minimise(&Threshold, &[9_999, 73], 2_000);
        let out = Threshold.run_case(&mut Ctx::replaying(&min));
        assert!(out.verdict.is_fail(), "minimised case no longer fails");
        assert_eq!(min.first().copied(), Some(700), "not shrunk to the boundary: {min:?}");
    }

    #[test]
    fn triage_attaches_layer_and_repro() {
        let mut rec = FailureRecord {
            target: "threshold".into(),
            layer: String::new(),
            message: String::new(),
            choices: vec![5_000, 9],
            minimized: None,
            repro: None,
        };
        triage_failure(&Threshold, &mut rec, 2_000);
        assert_eq!(rec.layer, "isa vs source");
        assert!(rec.message.contains("700"), "layer re-attribution ran on the minimum");
        let repro = rec.repro.as_deref().expect("repro line");
        assert_eq!(repro, "silver-fuzz --target threshold --replay threshold:2bc");

        // The repro line round-trips through the replay parser.
        let (t, choices) = parse_replay("threshold:2bc").expect("parses");
        assert_eq!(t, "threshold");
        assert_eq!(choices, vec![0x2bc]);
        assert!(parse_replay("nonsense-without-colon-or-file").is_err());
    }
}
