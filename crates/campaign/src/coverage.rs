//! Aggregated coverage over the three feedback signals.
//!
//! A case's coverage is a [`CovSnap`]: which opcodes the ISA retired
//! ([`ExecStats`]), which PC edges it walked ([`EdgeSet`]), and which
//! source constructs the generated program contained
//! ([`FeatureSet`]). The engine folds snaps into one
//! [`GlobalCoverage`] per target; a case earns a place in the corpus
//! exactly when its snap adds something to the global set
//! (the AFL "keep if new coverage" policy).

use ag32::{EdgeSet, ExecStats, Opcode};
use cakeml::FeatureSet;

/// Coverage observed while running one case.
#[derive(Clone, Debug)]
pub struct CovSnap {
    /// Per-opcode retire counters from the ISA-level run(s).
    pub stats: ExecStats,
    /// PC-edge bitmap from the ISA-level run(s).
    pub edges: EdgeSet,
    /// Source constructs in the generated program (empty for targets
    /// that generate machine code directly).
    pub features: FeatureSet,
}

impl Default for CovSnap {
    fn default() -> Self {
        CovSnap::new()
    }
}

impl CovSnap {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        CovSnap { stats: ExecStats::new(), edges: EdgeSet::new(), features: FeatureSet::new() }
    }
}

/// Accumulated coverage across all cases of one target.
#[derive(Clone, Debug)]
pub struct GlobalCoverage {
    /// Summed opcode counters.
    pub stats: ExecStats,
    /// Union of all PC-edge bitmaps.
    pub edges: EdgeSet,
    /// Union of all feature sets.
    pub features: FeatureSet,
}

impl Default for GlobalCoverage {
    fn default() -> Self {
        GlobalCoverage::new()
    }
}

impl GlobalCoverage {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        GlobalCoverage {
            stats: ExecStats::new(),
            edges: EdgeSet::new(),
            features: FeatureSet::new(),
        }
    }

    /// Would merging `snap` add any new opcode, edge or feature?
    #[must_use]
    pub fn would_add(&self, snap: &CovSnap) -> bool {
        snap.edges.has_new_bits(&self.edges)
            || snap.features.has_new_bits(&self.features)
            || Opcode::ALL
                .iter()
                .any(|op| snap.stats.count(*op) > 0 && self.stats.count(*op) == 0)
    }

    /// Folds `snap` in; returns `true` when it contributed anything new.
    pub fn merge(&mut self, snap: &CovSnap) -> bool {
        let fresh = self.would_add(snap);
        self.stats.merge(&snap.stats);
        self.edges.merge(&snap.edges);
        self.features.merge(&snap.features);
        fresh
    }

    /// Number of distinct opcodes retired so far.
    #[must_use]
    pub fn opcodes(&self) -> usize {
        self.stats.opcodes_exercised()
    }

    /// Opcode coverage as a percentage of the full ISA (0–100).
    #[must_use]
    pub fn opcode_pct(&self) -> f64 {
        100.0 * self.opcodes() as f64 / Opcode::COUNT as f64
    }

    /// Number of distinct PC edges seen.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.count()
    }

    /// Number of distinct source features seen.
    #[must_use]
    pub fn feature_count(&self) -> usize {
        self.features.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cakeml::Feature;

    #[test]
    fn merge_reports_novelty_once() {
        let mut global = GlobalCoverage::new();
        let mut snap = CovSnap::new();
        snap.stats.opcode_retired[Opcode::Normal as usize] = 3;
        snap.edges.insert(0, 4);
        snap.features.insert(Feature::If);

        assert!(global.would_add(&snap));
        assert!(global.merge(&snap));
        // Identical coverage the second time adds nothing.
        assert!(!global.would_add(&snap));
        assert!(!global.merge(&snap));
        assert_eq!(global.opcodes(), 1);
        assert_eq!(global.edge_count(), 1);
        assert_eq!(global.feature_count(), 1);
        assert!(global.opcode_pct() > 0.0);

        // A new opcode alone is novelty, even with no new edges.
        let mut snap2 = snap.clone();
        snap2.stats.opcode_retired[Opcode::Jump as usize] = 1;
        assert!(global.merge(&snap2));
    }
}
