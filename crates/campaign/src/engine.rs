//! The campaign engine: sharded, deterministic, budgeted.
//!
//! Execution proceeds in *rounds*. Each round hands every shard a fixed
//! number of cases and an immutable snapshot of the corpus; shards run
//! on `testkit::par` threads and return per-case records; the main
//! thread merges records **in (shard, case) order**, so coverage
//! accounting, corpus admission and failure discovery are independent
//! of thread scheduling. Every case's RNG is seeded from
//! `(seed, round, shard, case)` through SplitMix64, which makes the
//! whole campaign a pure function of the master seed and the case
//! budget — two runs with the same `--seed` and `--budget N` produce
//! byte-identical JSON reports. Wall-clock budgets stop at round
//! boundaries (case counts then depend on machine speed, which is why
//! throughput lives in the stderr summary, not the JSON).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use obs::{Histogram, Registry};
use testkit::prop::Ctx;
use testkit::rng::{Rng as _, SplitMix64, TestRng};

use crate::corpus::{Corpus, CorpusEntry};
use crate::coverage::{CovSnap, GlobalCoverage};
use crate::gen;
use crate::report::{CampaignReport, FailureRecord, TargetReport};
use crate::targets::{Target, Verdict};
use crate::triage;

/// When to stop.
#[derive(Clone, Copy, Debug)]
pub enum Budget {
    /// Run exactly this many cases (deterministic reports).
    Cases(u64),
    /// Run until the wall clock expires, stopping at a round boundary.
    Wall(Duration),
}

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Master seed.
    pub seed: u64,
    /// Shard (thread) count.
    pub shards: usize,
    /// Stop condition.
    pub budget: Budget,
    /// Cases per shard per round.
    pub cases_per_shard_round: u64,
    /// Directory to load the seed corpus from and save new entries to.
    pub corpus_dir: Option<PathBuf>,
    /// Run triage (minimise + layer re-attribution + repro) on failures.
    pub triage: bool,
    /// Shrink-evaluation budget per triaged failure.
    pub triage_budget: u32,
    /// At most this many failures are triaged (the rest keep their raw
    /// choice streams).
    pub max_triaged: usize,
    /// File to append triaged repro lines to.
    pub regressions_path: Option<PathBuf>,
    /// Print a one-line progress report to stderr after every round.
    /// Progress is stderr-only and never touches the JSON report, so
    /// `--progress` runs stay byte-identical to silent ones.
    pub progress: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: testkit::master_seed(),
            shards: 1,
            budget: Budget::Cases(200),
            cases_per_shard_round: 25,
            corpus_dir: None,
            triage: true,
            triage_budget: 300,
            max_triaged: 4,
            regressions_path: None,
            progress: false,
        }
    }
}

/// What one case produced, as reported by a shard.
struct CaseRecord {
    target_idx: usize,
    choices: Vec<u64>,
    cov: CovSnap,
    verdict: Verdict,
    fuel_saved: Option<u64>,
}

fn mix4(a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut s = SplitMix64::new(a);
    let mut out = s.next_u64() ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    out = SplitMix64::new(out ^ c.rotate_left(17)).next_u64();
    SplitMix64::new(out ^ d.rotate_left(31)).next_u64()
}

/// Weighted target pick: deterministic in `roll`.
fn pick_target(weights: &[u32], total: u32, roll: u64) -> usize {
    let mut x = (roll % u64::from(total)) as u32;
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= *w;
    }
    weights.len() - 1
}

/// Runs one shard's slice of a round against a corpus snapshot.
///
/// `latency[target_idx]` receives each case's wall-clock in
/// microseconds; the returned [`Duration`] is the shard's total busy
/// time for the slice. Both are observability-only — they never feed
/// back into case generation, so the campaign stays deterministic.
fn run_shard(
    targets: &[Box<dyn Target>],
    weights: &[u32],
    total_weight: u32,
    corpus: &Corpus,
    seed: u64,
    round: u64,
    shard: u64,
    cases: u64,
    latency: &[Arc<Histogram>],
) -> (Vec<CaseRecord>, Duration) {
    let busy_start = Instant::now();
    let mut out = Vec::with_capacity(cases as usize);
    for i in 0..cases {
        let case_seed = mix4(seed, round, shard, i);
        let mut rng = TestRng::seed_from_u64(case_seed);
        let target_idx = pick_target(weights, total_weight, rng.next_u64());
        let target = &targets[target_idx];
        let bases: Vec<&CorpusEntry> = corpus.for_target(target.name()).collect();
        let mutate = !bases.is_empty() && rng.gen_bool(0.5);
        let case_start = Instant::now();
        let (choices, outcome) = if mutate {
            let base = bases[(rng.next_u64() % bases.len() as u64) as usize];
            let mutated = gen::mutate(&mut rng, &base.choices);
            let mut ctx = Ctx::replaying(&mutated);
            let outcome = target.run_case(&mut ctx);
            (ctx.recorded_choices().to_vec(), outcome)
        } else {
            let mut ctx = Ctx::recording(&mut rng);
            let outcome = target.run_case(&mut ctx);
            (ctx.recorded_choices().to_vec(), outcome)
        };
        latency[target_idx].record(case_start.elapsed().as_micros() as u64);
        out.push(CaseRecord {
            target_idx,
            choices,
            cov: outcome.cov,
            verdict: outcome.verdict,
            fuel_saved: outcome.fuel_saved,
        });
    }
    (out, busy_start.elapsed())
}

/// Runs a campaign over `targets`.
///
/// # Panics
///
/// Panics if `targets` is empty or `shards == 0`.
#[must_use]
pub fn run_campaign(targets: &[Box<dyn Target>], cfg: &CampaignConfig) -> CampaignReport {
    run_campaign_metered(targets, cfg, &Registry::new())
}

/// [`run_campaign`] with an [`obs::Registry`](Registry) receiving the
/// campaign's operational metrics: per-target case-latency histograms
/// (`campaign.case_us.<target>`), case/failure counters, per-shard busy
/// time and utilization, and end-of-run throughput. The metrics are
/// wall-clock-derived and therefore nondeterministic — they belong in a
/// separate `BENCH_metrics.json`, never in the deterministic campaign
/// report.
///
/// # Panics
///
/// Panics if `targets` is empty or `shards == 0`.
#[must_use]
pub fn run_campaign_metered(
    targets: &[Box<dyn Target>],
    cfg: &CampaignConfig,
    metrics: &Registry,
) -> CampaignReport {
    assert!(!targets.is_empty(), "campaign needs at least one target");
    assert!(cfg.shards > 0, "campaign needs at least one shard");
    let start = Instant::now();

    let weights: Vec<u32> = targets.iter().map(|t| t.weight().max(1)).collect();
    let total_weight: u32 = weights.iter().sum();

    // Pre-register the metric handles once; shards then touch only
    // atomics (no registry lock on the hot path).
    let latency: Vec<Arc<Histogram>> = targets
        .iter()
        .map(|t| metrics.histogram(&format!("campaign.case_us.{}", t.name())))
        .collect();
    let cases_ctr = metrics.counter("campaign.cases");
    let failures_ctr = metrics.counter("campaign.failures");
    let rounds_ctr = metrics.counter("campaign.rounds");
    let shard_busy: Vec<Arc<obs::Counter>> = (0..cfg.shards)
        .map(|s| metrics.counter(&format!("campaign.shard_busy_us.{s}")))
        .collect();
    // Boot-replay fuel saved by checkpoint-anchored divergence triage.
    let fuel_saved_ctr: Vec<Arc<obs::Counter>> = targets
        .iter()
        .map(|t| metrics.counter(&format!("campaign.replay_fuel_saved.{}", t.name())))
        .collect();

    let mut corpus = match &cfg.corpus_dir {
        Some(dir) => Corpus::load(dir).unwrap_or_default(),
        None => Corpus::new(),
    };
    let mut coverage: Vec<GlobalCoverage> =
        targets.iter().map(|_| GlobalCoverage::new()).collect();
    let mut cases_per_target: Vec<u64> = vec![0; targets.len()];
    let mut failures_per_target: Vec<u64> = vec![0; targets.len()];
    let mut failures: Vec<FailureRecord> = Vec::new();

    let mut total_cases = 0u64;
    let mut rounds = 0u64;
    loop {
        // Budget check (case budgets are exact; wall budgets stop here).
        let round_quota = match cfg.budget {
            Budget::Cases(n) => {
                if total_cases >= n {
                    break;
                }
                (n - total_cases).min(cfg.cases_per_shard_round * cfg.shards as u64)
            }
            Budget::Wall(limit) => {
                if start.elapsed() >= limit {
                    break;
                }
                cfg.cases_per_shard_round * cfg.shards as u64
            }
        };
        // Deterministic split of the quota across shards.
        let base = round_quota / cfg.shards as u64;
        let extra = round_quota % cfg.shards as u64;
        let shard_inputs: Vec<(u64, u64)> = (0..cfg.shards as u64)
            .map(|s| (s, base + u64::from(s < extra)))
            .filter(|(_, n)| *n > 0)
            .collect();

        let corpus_ref = &corpus;
        let latency_ref = &latency;
        let results = testkit::par::par_map(shard_inputs.clone(), |(shard, n)| {
            run_shard(
                targets,
                &weights,
                total_weight,
                corpus_ref,
                cfg.seed,
                rounds,
                shard,
                n,
                latency_ref,
            )
        });

        // Merge in (shard, case) order: deterministic regardless of the
        // thread schedule above.
        for ((shard, _), (shard_records, busy)) in shard_inputs.iter().zip(results) {
            shard_busy[*shard as usize].add(busy.as_micros() as u64);
            for rec in shard_records {
                total_cases += 1;
                cases_per_target[rec.target_idx] += 1;
                let fresh = coverage[rec.target_idx].merge(&rec.cov);
                if fresh {
                    corpus.add(CorpusEntry::new(targets[rec.target_idx].name(), rec.choices.clone()));
                }
                if let Some(saved) = rec.fuel_saved {
                    fuel_saved_ctr[rec.target_idx].add(saved);
                }
                if let Verdict::Fail { layer, message } = rec.verdict {
                    failures_per_target[rec.target_idx] += 1;
                    failures.push(FailureRecord {
                        target: targets[rec.target_idx].name().to_string(),
                        layer,
                        message,
                        choices: rec.choices,
                        minimized: None,
                        repro: None,
                    });
                }
            }
        }
        rounds += 1;
        rounds_ctr.inc();
        cases_ctr.add(total_cases - cases_ctr.get());
        failures_ctr.add(failures.len() as u64 - failures_ctr.get());
        if cfg.progress {
            let secs = start.elapsed().as_secs_f64();
            let rate = if secs > 0.0 { total_cases as f64 / secs } else { 0.0 };
            eprintln!(
                "silver-fuzz: round {rounds}: {total_cases} cases ({rate:.0}/s), corpus {}, {} failure(s)",
                corpus.len(),
                failures.len(),
            );
        }
    }

    // End-of-run derived metrics: throughput and shard utilization.
    let wall_us = start.elapsed().as_micros() as u64;
    let secs = start.elapsed().as_secs_f64();
    metrics
        .gauge("campaign.cases_per_sec")
        .set(if secs > 0.0 { total_cases as f64 / secs } else { 0.0 });
    metrics.gauge("campaign.corpus_len").set(corpus.len() as f64);
    for (s, busy) in shard_busy.iter().enumerate() {
        let util = if wall_us > 0 { busy.get() as f64 / wall_us as f64 } else { 0.0 };
        metrics.gauge(&format!("campaign.shard_util.{s}")).set(util.min(1.0));
    }

    if cfg.triage {
        for rec in failures.iter_mut().take(cfg.max_triaged) {
            if let Some(target) = targets.iter().find(|t| t.name() == rec.target) {
                triage::triage_failure(target.as_ref(), rec, cfg.triage_budget);
            }
        }
        if let Some(path) = &cfg.regressions_path {
            let _ = triage::append_regressions(path, &failures);
        }
    }

    if let Some(dir) = &cfg.corpus_dir {
        let _ = corpus.save(dir);
    }

    CampaignReport {
        seed: cfg.seed,
        shards: cfg.shards,
        rounds,
        cases: total_cases,
        corpus_len: corpus.len(),
        targets: targets
            .iter()
            .enumerate()
            .map(|(i, t)| TargetReport {
                name: t.name().to_string(),
                cases: cases_per_target[i],
                failures: failures_per_target[i],
                opcodes: coverage[i].opcodes(),
                opcode_pct: coverage[i].opcode_pct(),
                edges: coverage[i].edge_count(),
                features: coverage[i].feature_count(),
            })
            .collect(),
        failures,
        wall: start.elapsed(),
    }
}

/// Replays one case against the named target from `targets`.
///
/// # Errors
///
/// When no target with that name is registered.
pub fn replay_case(
    targets: &[Box<dyn Target>],
    target_name: &str,
    choices: &[u64],
) -> Result<crate::targets::CaseOutcome, String> {
    let target = targets
        .iter()
        .find(|t| t.name() == target_name)
        .ok_or_else(|| format!("no target named {target_name:?} registered"))?;
    Ok(target.run_case(&mut Ctx::replaying(choices)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_pick_is_exhaustive_and_stable() {
        let weights = [4, 2, 1];
        let mut seen = [0u32; 3];
        for roll in 0..70u64 {
            seen[pick_target(&weights, 7, roll)] += 1;
        }
        assert_eq!(seen, [40, 20, 10]);
        assert_eq!(pick_target(&weights, 7, 6), 2);
    }

    #[test]
    fn metered_campaign_records_latency_and_utilization() {
        use crate::coverage::CovSnap;
        use crate::targets::{CaseOutcome, Target, Verdict};

        struct Tiny;
        impl Target for Tiny {
            fn name(&self) -> &'static str {
                "tiny"
            }
            fn run_case(&self, ctx: &mut Ctx) -> CaseOutcome {
                let _ = ctx.gen_range(0u64..8);
                CaseOutcome { cov: CovSnap::new(), verdict: Verdict::Pass, fuel_saved: None }
            }
        }

        let targets: Vec<Box<dyn Target>> = vec![Box::new(Tiny)];
        let cfg = CampaignConfig {
            seed: 7,
            shards: 2,
            budget: Budget::Cases(12),
            cases_per_shard_round: 3,
            ..CampaignConfig::default()
        };
        let metrics = Registry::new();
        let report = run_campaign_metered(&targets, &cfg, &metrics);
        assert_eq!(report.cases, 12);
        assert_eq!(metrics.counter("campaign.cases").get(), 12);
        assert_eq!(metrics.histogram("campaign.case_us.tiny").count(), 12);
        // Both shards booked busy time and a utilization gauge in [0, 1].
        for s in 0..2 {
            let util = metrics.gauge(&format!("campaign.shard_util.{s}")).get();
            assert!((0.0..=1.0).contains(&util), "shard {s} utilization {util}");
        }
        // The metered run produces the same deterministic report as the
        // unmetered one: metrics are observation-only.
        let again = run_campaign(&targets, &cfg);
        assert_eq!(report.json_lines(), again.json_lines());
    }

    #[test]
    fn mix4_separates_coordinates() {
        let a = mix4(1, 0, 0, 0);
        assert_ne!(a, mix4(1, 0, 0, 1));
        assert_ne!(a, mix4(1, 0, 1, 0));
        assert_ne!(a, mix4(1, 1, 0, 0));
        assert_ne!(a, mix4(2, 0, 0, 0));
        assert_eq!(a, mix4(1, 0, 0, 0));
    }
}
