//! Case generators: choice streams → programs.
//!
//! Every generator is a pure function of a [`Ctx`] choice stream, so a
//! case is fully described by its recorded choices: fresh generation,
//! corpus replay and shrinking all go through the same code path. The
//! generators mirror the shapes the paper's differential obligations
//! care about — typed expression trees for the compiler (theorem (2)),
//! structured loops of ALU work for the processor (theorem (9)/(10)),
//! and I/O-heavy basis programs for the system-call layer
//! (theorems (11)–(13)).

use ag32::asm::Assembler;
use ag32::{Func, Reg, Ri, Shift, State};
use testkit::prop::Ctx;
use testkit::rng::{Rng as _, TestRng};

// ---- source-expression generator (compiler targets) ----

/// Emits an integer expression over variables `v0..v<depth>`.
fn int_expr(c: &mut Ctx, depth: u32, scope: u32) -> String {
    if depth == 0 || c.choose(3) == 0 {
        return match c.choose(4) {
            0 => {
                let v: i32 = c.gen_range(-1000i32..1000);
                if v < 0 {
                    format!("~{}", -v)
                } else {
                    v.to_string()
                }
            }
            1 => "0".to_string(),
            2 => "1073741824".to_string(), // 1 << 30: the 31-bit boundary
            _ => format!("v{}", c.choose(scope.max(1) as usize)),
        };
    }
    let d = depth - 1;
    match c.choose(8) {
        0 => format!("({} + {})", int_expr(c, d, scope), int_expr(c, d, scope)),
        1 => format!("({} - {})", int_expr(c, d, scope), int_expr(c, d, scope)),
        2 => format!("({} * {})", int_expr(c, d, scope), int_expr(c, d, scope)),
        3 => format!("({} div {})", int_expr(c, d, scope), int_expr(c, d, scope)),
        4 => format!("({} mod {})", int_expr(c, d, scope), int_expr(c, d, scope)),
        5 => format!(
            "(if {} then {} else {})",
            bool_expr(c, 2.min(d), scope),
            int_expr(c, d, scope),
            int_expr(c, d, scope)
        ),
        6 => format!(
            "(let val v{scope} = {} in {} end)",
            int_expr(c, d, scope),
            int_expr(c, d, scope + 1)
        ),
        _ => format!(
            "(case {} of 0 => {} | _ => {})",
            int_expr(c, d, scope),
            int_expr(c, d, scope),
            int_expr(c, d, scope)
        ),
    }
}

fn bool_expr(c: &mut Ctx, depth: u32, scope: u32) -> String {
    if depth == 0 || c.choose(3) == 0 {
        return match c.choose(4) {
            0 => if c.any_bool() { "true" } else { "false" }.to_string(),
            1 => format!("({} < {})", int_expr(c, 1, scope), int_expr(c, 1, scope)),
            2 => format!("({} <= {})", int_expr(c, 1, scope), int_expr(c, 1, scope)),
            _ => format!("({} = {})", int_expr(c, 1, scope), int_expr(c, 1, scope)),
        };
    }
    let d = depth - 1;
    match c.choose(3) {
        0 => format!("({} andalso {})", bool_expr(c, d, scope), bool_expr(c, d, scope)),
        1 => format!("({} orelse {})", bool_expr(c, d, scope), bool_expr(c, d, scope)),
        _ => format!("(not {})", bool_expr(c, d, scope)),
    }
}

/// A prelude-free exit-code program: `val v0 = 17; val _ = Runtime.exit
/// (e);` with `e` a random expression tree. Crashing behaviours
/// (div/mod by zero, unmatched case) are in scope on purpose — crash
/// exit codes are behaviour the layers must agree on too.
#[must_use]
pub fn source_program(c: &mut Ctx) -> String {
    let depth = 1 + c.choose(5) as u32;
    format!("val v0 = 17;\nval _ = Runtime.exit ({});", int_expr(c, depth, 1))
}

// ---- basis/FFI program generator (system-call targets) ----

fn small_string(c: &mut Ctx) -> String {
    c.string_of("abc XYZ09\n", 0..=12)
}

/// A prelude-using program exercising the basis I/O protocols: random
/// mixes of `print`, `print_err`, stdin consumption and integer
/// formatting, ending in an explicit exit. Returns `(src, stdin)`.
#[must_use]
pub fn ffi_program(c: &mut Ctx) -> (String, Vec<u8>) {
    let stdin = small_string(c).into_bytes();
    let mut body = String::new();
    let stmts = 1 + c.choose(4);
    for i in 0..stmts {
        match c.choose(5) {
            0 => body.push_str(&format!("val _ = print {:?};\n", small_string(c))),
            1 => body.push_str(&format!("val _ = print_err {:?};\n", small_string(c))),
            2 => {
                let v: i32 = c.gen_range(-9999i32..9999);
                let lit = if v < 0 { format!("~{}", -v) } else { v.to_string() };
                body.push_str(&format!("val _ = print (int_to_string {lit});\n"));
            }
            3 => body.push_str(&format!("val s{i} = read_all ();\nval _ = print s{i};\n")),
            _ => body.push_str(&format!(
                "val _ = print (concat_strings [{:?}, {:?}]);\n",
                small_string(c),
                small_string(c)
            )),
        }
    }
    let code = c.gen_range(0u8..=3);
    body.push_str(&format!("val _ = exit {code};\n"));
    (body, stdin)
}

// ---- machine-code generator (processor targets) ----

/// A random structured Silver program assembled at address 0: counted
/// loops of ALU/shift/memory work ending in the canonical halt — the
/// same shape the lockstep suites use, but drawn from the replayable
/// choice stream.
///
/// # Panics
///
/// Never for in-range choices: the assembler input is well-formed by
/// construction.
#[must_use]
pub fn isa_state(c: &mut Ctx) -> State {
    let mut a = Assembler::new(0);
    let r = Reg::new;
    let blocks = 1 + c.choose(3) as u32;
    for b in 0..blocks {
        let counter = r(50 + b as u8);
        a.li(counter, 1 + c.choose(4) as u32);
        a.label(&format!("block{b}"));
        let body = 1 + c.choose(5);
        for _ in 0..body {
            let w = r(1 + c.choose(40) as u8);
            let x = Ri::Reg(r(1 + c.choose(40) as u8));
            let y = if c.any_bool() {
                Ri::Reg(r(1 + c.choose(40) as u8))
            } else {
                Ri::Imm(c.gen_range(-32i8..=31))
            };
            if c.gen_bool(0.25) {
                a.shift(Shift::from_bits(c.choose(4) as u32), w, x, y);
            } else {
                a.normal(Func::from_bits(c.choose(16) as u32), w, x, y);
            }
        }
        a.normal(Func::Dec, counter, Ri::Imm(0), Ri::Reg(counter));
        a.branch_nonzero_sub(Ri::Reg(counter), Ri::Imm(0), &format!("block{b}"), r(60));
    }
    a.halt(r(61));
    let code = a.assemble().expect("generated program assembles");
    let mut s = State::new();
    s.mem.write_bytes(0, &code);
    s
}

// ---- choice-stream mutation (corpus evolution) ----

/// Mutates a recorded choice stream: point perturbations, truncation,
/// segment duplication or random extension, chosen by `rng`. The result
/// replays into a *related* case — the reads-past-end-yield-zero rule
/// keeps every mutant well-formed.
#[must_use]
pub fn mutate(rng: &mut TestRng, base: &[u64]) -> Vec<u64> {
    let mut out = base.to_vec();
    if out.is_empty() {
        out.push(rng.next_u64() & 0xFF);
        return out;
    }
    let ops = 1 + (rng.next_u32() % 3) as usize;
    for _ in 0..ops {
        match rng.next_u32() % 4 {
            // Perturb one position (small delta keeps values in-range
            // more often than a fresh draw would).
            0 => {
                let i = (rng.next_u64() % out.len() as u64) as usize;
                let delta = (rng.next_u64() % 7) + 1;
                out[i] = if rng.gen_bool(0.5) {
                    out[i].wrapping_add(delta)
                } else {
                    out[i].saturating_sub(delta)
                };
            }
            // Truncate a suffix (shrinks toward simpler cases).
            1 => {
                let keep = (rng.next_u64() % out.len() as u64) as usize;
                out.truncate(keep.max(1));
            }
            // Duplicate a segment (grows structure).
            2 => {
                let start = (rng.next_u64() % out.len() as u64) as usize;
                let len = 1 + (rng.next_u64() % 8) as usize;
                let seg: Vec<u64> =
                    out[start..(start + len).min(out.len())].to_vec();
                let at = (rng.next_u64() % (out.len() as u64 + 1)) as usize;
                for (k, v) in seg.into_iter().enumerate() {
                    out.insert(at + k, v);
                }
            }
            // Append fresh randomness (explores deeper structure).
            _ => {
                let extra = 1 + (rng.next_u64() % 8) as usize;
                for _ in 0..extra {
                    out.push(rng.next_u64() & 0xFFFF);
                }
            }
        }
    }
    out.truncate(crate::corpus::MAX_CHOICES);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use testkit::rng::TestRng;

    #[test]
    fn generators_are_pure_functions_of_choices() {
        let mut rng = TestRng::seed_from_u64(42);
        let mut ctx = Ctx::recording(&mut rng);
        let src = source_program(&mut ctx);
        let choices = ctx.recorded_choices().to_vec();

        let mut replay = Ctx::replaying(&choices);
        assert_eq!(source_program(&mut replay), src);

        // Machine-program generation replays identically too.
        let mut rng2 = TestRng::seed_from_u64(7);
        let mut ctx2 = Ctx::recording(&mut rng2);
        let s = isa_state(&mut ctx2);
        let choices2 = ctx2.recorded_choices().to_vec();
        let s2 = isa_state(&mut Ctx::replaying(&choices2));
        assert!(s.isa_visible_eq(&s2));
    }

    #[test]
    fn generated_sources_compile_and_ffi_programs_parse() {
        let mut rng = TestRng::seed_from_u64(1234);
        for _ in 0..8 {
            let mut ctx = Ctx::recording(&mut rng);
            let src = source_program(&mut ctx);
            let cfg = cakeml::CompilerConfig { prelude: false, ..Default::default() };
            cakeml::frontend(&src, &cfg).unwrap_or_else(|e| panic!("{src}\n{e}"));

            let mut ctx = Ctx::recording(&mut rng);
            let (ffi_src, _stdin) = ffi_program(&mut ctx);
            cakeml::frontend(&ffi_src, &cakeml::CompilerConfig::default())
                .unwrap_or_else(|e| panic!("{ffi_src}\n{e}"));
        }
    }

    #[test]
    fn mutation_is_deterministic_and_bounded() {
        let base: Vec<u64> = (0..100).collect();
        let m1 = mutate(&mut TestRng::seed_from_u64(5), &base);
        let m2 = mutate(&mut TestRng::seed_from_u64(5), &base);
        assert_eq!(m1, m2);
        assert!(!m1.is_empty());
        assert!(m1.len() <= crate::corpus::MAX_CHOICES);
        // An empty base still yields something replayable.
        assert!(!mutate(&mut TestRng::seed_from_u64(9), &[]).is_empty());
    }
}
