//! The differential-target registry.
//!
//! Each [`Target`] wraps one of the repo's theorem-analog relations as
//! a fuzzable check: draw a case from a choice stream, run the two (or
//! three) semantics it relates, and report agreement plus the coverage
//! the case earned. Failure verdicts name the layer pair that diverged
//! — the targets compare adjacent layers top-down, so the first failing
//! comparison *is* the layer bisection the triage step reports.
//!
//! | target | relation | paper |
//! |---|---|---|
//! | `t2`, `t2-gc`, `t2-noopt` | interpreter ↔ compiled ISA code | theorem (2) |
//! | `t2@jet` family | the same relation, verdict run on the jet engine under full shadow | theorem (2) ∘ theorem J |
//! | `t9` | ISA ↔ circuit lockstep | theorem (9) |
//! | `t10` | circuit ↔ generated Verilog | theorem (10) |
//! | `syscall` | oracle ↔ system-call machine code | theorems (11)–(13) |
//! | `t-jet` | reference `Next` ↔ jet translation-cache engine | theorem J |
//! | `t-snap` | checkpointed-and-resumed run ↔ uninterrupted run | crash-resume over theorem J |
//!
//! The full end-to-end target (theorem (8)) lives in the `silver-stack`
//! crate — it needs the stack composition, which sits above this crate.


use basis::{build_image, run_to_halt_with, run_with_oracle, BasisHost, ExitStatus, FsState};
use cakeml::{
    compile_source, frontend, program_features, run_program, CompilerConfig, NoFfi, Stop,
    TargetLayout,
};
use silver::env::{Latency, MemEnvConfig};
use testkit::prop::Ctx;

use crate::coverage::CovSnap;
use crate::gen;

/// The verdict of one case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// All compared layers agreed.
    Pass,
    /// Two layers diverged (or one of them failed to run).
    Fail {
        /// Which layer (pair) is to blame, e.g. `"isa vs source"`.
        layer: String,
        /// Human-readable detail, including the generated case.
        message: String,
    },
}

impl Verdict {
    /// True for [`Verdict::Fail`].
    #[must_use]
    pub fn is_fail(&self) -> bool {
        matches!(self, Verdict::Fail { .. })
    }
}

/// What one case produced: its verdict and the coverage it earned.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Coverage observed while running the case.
    pub cov: CovSnap,
    /// Agreement verdict.
    pub verdict: Verdict,
    /// Boot-replay fuel a checkpoint-anchored triage replay avoided
    /// (retires skipped by replaying from the anchor instead of reset).
    /// `None` when the case passed or no anchor was available.
    pub fuel_saved: Option<u64>,
}

impl CaseOutcome {
    fn pass(cov: CovSnap) -> Self {
        CaseOutcome { cov, verdict: Verdict::Pass, fuel_saved: None }
    }

    fn fail(cov: CovSnap, layer: &str, message: String) -> Self {
        CaseOutcome {
            cov,
            verdict: Verdict::Fail { layer: layer.to_string(), message },
            fuel_saved: None,
        }
    }

    fn with_fuel_saved(mut self, saved: u64) -> Self {
        self.fuel_saved = Some(saved);
        self
    }
}

/// A differential fuzz target: a pure function from a choice stream to
/// a [`CaseOutcome`]. Implementations must be deterministic — the same
/// choices must yield the same verdict — because replay, shrinking and
/// the corpus all depend on it.
pub trait Target: Sync {
    /// Stable registry name (used in reports, seed files, repro lines).
    fn name(&self) -> &'static str;

    /// Draws one case from `ctx` and checks it.
    fn run_case(&self, ctx: &mut Ctx) -> CaseOutcome;

    /// Relative scheduling weight (cheap targets get more cases).
    fn weight(&self) -> u32 {
        3
    }
}

// ---- theorem (2): interpreter vs compiled ISA code ----

/// Compiler correctness under one [`CompilerConfig`], executed on the
/// reference interpreter or — the campaign-throughput configuration —
/// on the jet translation-cache engine under full lockstep shadow.
pub struct CompilerTarget {
    name: &'static str,
    cfg: CompilerConfig,
    jet: bool,
}

impl CompilerTarget {
    /// The config matrix: default optimising build, GC build, and the
    /// everything-off build (each exercises different backend paths).
    #[must_use]
    pub fn matrix() -> Vec<CompilerTarget> {
        let base = CompilerConfig { prelude: false, ..CompilerConfig::default() };
        vec![
            CompilerTarget { name: "t2", cfg: base.clone(), jet: false },
            CompilerTarget {
                name: "t2-gc",
                cfg: CompilerConfig { gc: true, ..base.clone() },
                jet: false,
            },
            CompilerTarget {
                name: "t2-noopt",
                cfg: CompilerConfig {
                    direct_calls: false,
                    tail_calls: false,
                    const_fold: false,
                    ..base
                },
                jet: false,
            },
        ]
    }

    /// The same config matrix sharded onto the jet engine with full
    /// shadow on: every case is still compared retire-for-retire
    /// against the reference interpreter (theorem J), but the verdict
    /// run and the coverage stats come from jet. Comparing this
    /// family's case rate with [`matrix`](CompilerTarget::matrix)'s is
    /// the campaign-throughput experiment (`BENCH_campaign.json`
    /// engine-rate lines).
    #[must_use]
    pub fn jet_matrix() -> Vec<CompilerTarget> {
        Self::matrix()
            .into_iter()
            .map(|t| CompilerTarget {
                name: match t.name {
                    "t2" => "t2@jet",
                    "t2-gc" => "t2-gc@jet",
                    _ => "t2-noopt@jet",
                },
                cfg: t.cfg,
                jet: true,
            })
            .collect()
    }
}

impl Target for CompilerTarget {
    fn name(&self) -> &'static str {
        self.name
    }

    fn weight(&self) -> u32 {
        4
    }

    fn run_case(&self, ctx: &mut Ctx) -> CaseOutcome {
        let src = gen::source_program(ctx);
        let mut cov = CovSnap::new();

        let (prog, _) = match frontend(&src, &self.cfg) {
            Ok(p) => p,
            Err(e) => {
                return CaseOutcome::fail(cov, "source", format!("generated program rejected: {e}\n{src}"))
            }
        };
        cov.features = program_features(&prog);

        // Specification: the interpreter.
        let spec = match run_program(&prog, &mut NoFfi, 50_000_000) {
            Ok(out) => out.exit_code,
            Err(Stop::Exit(c)) => c,
            Err(other) => {
                return CaseOutcome::fail(cov, "source", format!("interpreter: {other}\n{src}"))
            }
        };

        // Implementation: compiled Silver code under pure `Next`.
        let layout = TargetLayout::default();
        let compiled = match compile_source(&src, layout, &self.cfg) {
            Ok(c) => c,
            Err(e) => return CaseOutcome::fail(cov, "compile", format!("{e}\n{src}")),
        };
        let mut s = ag32::State::new();
        s.mem.write_bytes(layout.code_base, &compiled.code);
        s.mem.write_word(
            layout.halt_addr,
            ag32::encode(ag32::Instr::Jump {
                func: ag32::Func::Add,
                w: ag32::Reg::new(0),
                a: ag32::Ri::Imm(0),
            }),
        );
        s.pc = layout.code_base;

        if self.jet {
            // Full shadow first: theorem J over the whole execution,
            // with forensics on divergence. Then the jet verdict run
            // (cheap next to the shadow) for exit code and stats; edge
            // coverage stays empty — this family is throughput-oriented.
            if let Err(fx) = jet::run_shadow(&s, 100_000_000, 1, 0) {
                return CaseOutcome::fail(
                    cov,
                    "jet vs isa",
                    format!("{}\nfor:\n{src}", fx.render()),
                );
            }
            let mut j = jet::Jet::from_state(&s);
            j.run(100_000_000);
            cov.stats = j.stats.clone();
            if !j.is_halted() {
                return CaseOutcome::fail(cov, "jet", format!("compiled code did not halt\n{src}"));
            }
            let got = j.mem().read_word(layout.exit_code_addr) as u8;
            if got != spec {
                return CaseOutcome::fail(
                    cov,
                    "jet vs source",
                    format!("exit {got} vs {spec} for:\n{src}"),
                );
            }
            return CaseOutcome::pass(cov);
        }

        s.run_with(100_000_000, &mut cov.edges);
        if !s.is_halted() {
            cov.stats = s.stats.clone();
            return CaseOutcome::fail(cov, "isa", format!("compiled code did not halt\n{src}"));
        }
        let got = s.mem.read_word(layout.exit_code_addr) as u8;
        cov.stats = s.stats.clone();
        if got != spec {
            return CaseOutcome::fail(
                cov,
                "isa vs source",
                format!("exit {got} vs {spec} for:\n{src}"),
            );
        }
        CaseOutcome::pass(cov)
    }
}

// ---- theorem (9): ISA vs circuit lockstep ----

/// ISA↔RTL lockstep over random structured machine programs with a
/// randomised-latency environment.
pub struct LockstepTarget;

impl Target for LockstepTarget {
    fn name(&self) -> &'static str {
        "t9"
    }

    fn weight(&self) -> u32 {
        2
    }

    fn run_case(&self, ctx: &mut Ctx) -> CaseOutcome {
        let state = gen::isa_state(ctx);
        let max_instructions: u64 = ctx.gen_range(50u64..=1500);
        let cfg = MemEnvConfig {
            mem_latency: Latency::Random { max: ctx.choose(4) as u32 },
            interrupt_latency: Latency::Random { max: ctx.choose(4) as u32 },
            start_delay: ctx.choose(3) as u32,
            seed: ctx.draw(u64::MAX),
        };

        // ISA-side coverage run (also the spec side of the relation).
        let mut cov = CovSnap::new();
        let mut isa = state.clone();
        isa.accel = |x| x;
        isa.run_with(max_instructions, &mut cov.edges);
        cov.stats = isa.stats.clone();

        let max_cycles = max_instructions * 64 + 10_000;
        match silver::lockstep::run_lockstep(&state, max_instructions, cfg.clone(), max_cycles) {
            Ok(_) => CaseOutcome::pass(cov),
            Err(e) => {
                // Re-run the failing case under the forensic harness so
                // the failure record (and, after triage shrinks it, the
                // minimal counterexample) carries the divergence report:
                // divergent cycle, retire tails on both sides, register
                // deltas, and a VCD window.
                let mut message = e.to_string();
                let mut fuel_saved = None;
                if let Err(mut fx) = silver::trace::run_lockstep_forensic(
                    &silver::silver_cpu(),
                    &state,
                    max_instructions,
                    cfg.clone(),
                    max_cycles,
                    &silver::trace::ForensicConfig::default(),
                ) {
                    // Checkpoint-anchored triage: replay from the last
                    // 64-retire boundary before the divergence instead
                    // of from reset. The ISA prefix is deterministic, so
                    // the anchor state is exactly what a rolling
                    // checkpoint would have captured there.
                    if let Some(d) = fx.divergent_step {
                        let anchor = d.saturating_sub(d % 64);
                        if anchor > 0 && anchor < max_instructions {
                            let mut pre = state.clone();
                            pre.run(anchor);
                            let replay = silver::lockstep::run_lockstep(
                                &pre,
                                max_instructions - anchor,
                                cfg,
                                max_cycles,
                            );
                            fx.replay_anchor = Some(anchor);
                            fx.notes.push(format!(
                                "checkpoint-anchored replay from retire {anchor}: {} (saved {anchor} boot retires)",
                                if replay.is_err() {
                                    "reproduced"
                                } else {
                                    "not reproduced (environment-schedule dependent; replay from boot)"
                                }
                            ));
                            fuel_saved = Some(anchor);
                        }
                    }
                    message.push('\n');
                    message.push_str(&fx.render());
                }
                let out = CaseOutcome::fail(cov, "rtl vs isa", message);
                match fuel_saved {
                    Some(n) => out.with_fuel_saved(n),
                    None => out,
                }
            }
        }
    }
}

// ---- theorem (10): circuit vs generated Verilog ----

/// Cycle-exact circuit↔Verilog agreement from the all-zero reset state
/// (the program is assembled at address 0, as the equivalence checker
/// requires).
pub struct VerilogTarget;

impl Target for VerilogTarget {
    fn name(&self) -> &'static str {
        "t10"
    }

    fn weight(&self) -> u32 {
        1
    }

    fn run_case(&self, ctx: &mut Ctx) -> CaseOutcome {
        let state = gen::isa_state(ctx);
        let cycles: u64 = ctx.gen_range(40u64..=250);
        let cfg = MemEnvConfig {
            mem_latency: Latency::Random { max: ctx.choose(3) as u32 },
            interrupt_latency: Latency::Fixed(0),
            start_delay: ctx.choose(3) as u32,
            seed: ctx.draw(u64::MAX),
        };

        // ISA shadow run for coverage feedback (the equivalence check
        // itself compares signals, not retires).
        let mut cov = CovSnap::new();
        let mut isa = state.clone();
        isa.run_with(cycles, &mut cov.edges);
        cov.stats = isa.stats.clone();

        match silver::verilog_level::check_cpu_verilog_equiv(&state, cfg.clone(), cycles) {
            Ok(()) => CaseOutcome::pass(cov),
            Err(e) => {
                // Forensic re-run: name the divergent cycle and signal,
                // attach both sides' signal tails and a VCD window.
                let mut message = e.to_string();
                if let Err(fx) = silver::trace::check_cpu_verilog_equiv_forensic(
                    &state,
                    cfg,
                    cycles,
                    &silver::trace::ForensicConfig::default(),
                ) {
                    message.push('\n');
                    message.push_str(&fx.render());
                }
                CaseOutcome::fail(cov, "verilog vs rtl", message)
            }
        }
    }
}

// ---- theorem J: reference `Next` vs the jet translation-cache engine ----

/// Full-shadow differential run of the [`jet`] engine against the
/// reference interpreter over random structured machine programs — the
/// engine-level analogue of `t9`, one layer up: instead of ISA↔circuit,
/// it relates the two *implementations* of the ISA layer. Every
/// retire's PC and the whole architectural state are compared; a
/// divergence fails with the rendered forensics report (divergent
/// retire index, field deltas, retire tails), which triage then shrinks
/// like any other failure.
pub struct JetTarget;

impl Target for JetTarget {
    fn name(&self) -> &'static str {
        "t-jet"
    }

    fn weight(&self) -> u32 {
        4 // cheap: two software engines, no circuit simulation
    }

    fn run_case(&self, ctx: &mut Ctx) -> CaseOutcome {
        let state = gen::isa_state(ctx);
        let fuel: u64 = ctx.gen_range(50u64..=2000);

        // ISA-side coverage run (the spec side of the relation).
        let mut cov = CovSnap::new();
        let mut isa = state.clone();
        isa.run_with(fuel, &mut cov.edges);
        cov.stats = isa.stats.clone();

        // The anchored shadow keeps a rolling checkpoint of the last
        // verified-good reference state, so a divergence can be replayed
        // from the anchor instead of from boot (cf. `jet::run_shadow`).
        match jet::run_shadow_anchored(&state, fuel, 1, 0, (fuel / 4).max(1)) {
            Ok(_) => CaseOutcome::pass(cov),
            Err(div) => {
                let mut message = div.forensics.render();
                if let Some(anchor) = &div.anchor {
                    let remaining = fuel.saturating_sub(div.anchor_retired);
                    let replay = jet::run_shadow(anchor, remaining, 1, 0);
                    message.push_str(&format!(
                        "\nanchored replay from retire {}: {} (saved {} boot retires)\n",
                        div.anchor_retired,
                        if replay.is_err() {
                            "reproduced"
                        } else {
                            "not reproduced (translation-cache history dependent; replay from boot)"
                        },
                        div.anchor_retired,
                    ));
                    return CaseOutcome::fail(cov, "jet vs isa", message)
                        .with_fuel_saved(div.anchor_retired);
                }
                CaseOutcome::fail(cov, "jet vs isa", message)
            }
        }
    }
}

// ---- snapshot/replay: crash-resume equivalence across engines ----

/// Snapshot/replay equivalence over random structured machine programs:
/// a run checkpointed at an arbitrary retire count and resumed — on
/// *either* engine — must be indistinguishable from the uninterrupted
/// run, and the checkpoint bytes must be identical no matter which
/// engine captured them. This is the fuzzable form of the crash-resume
/// obligation (`testkit::crash_resume_equiv`) plus the byte-stability
/// half of the snapshot format contract.
pub struct SnapTarget;

impl Target for SnapTarget {
    fn name(&self) -> &'static str {
        "t-snap"
    }

    fn weight(&self) -> u32 {
        2
    }

    fn run_case(&self, ctx: &mut Ctx) -> CaseOutcome {
        use silver::snapshot::{SnapEngine, Snapshot};

        let state = gen::isa_state(ctx);
        let fuel: u64 = ctx.gen_range(50u64..=2000);

        // ISA-side coverage run.
        let mut cov = CovSnap::new();
        let mut isa = state.clone();
        isa.run_with(fuel, &mut cov.edges);
        cov.stats = isa.stats.clone();

        // Uninterrupted reference run: the crash-resume baseline.
        let mut base = state.clone();
        base.run(fuel);
        let total = base.instructions_retired;

        // Kill point: an arbitrary retire count within the run.
        let k: u64 = ctx.gen_range(0..=total);

        // Checkpoint the same prefix on both engines.
        let mut pre = state.clone();
        pre.run(k);
        let snap_ref = Snapshot::capture(&pre);
        let mut jet_pre = jet::Jet::from_state(&state);
        jet_pre.run(k);
        let snap_jet = Snapshot::capture_jet(&jet_pre);

        // Byte stability: once the engine tag is normalised, the two
        // captures must serialise to identical bytes (no host ordering,
        // no engine-private state may leak into the format).
        let bytes = snap_ref.to_bytes();
        let jet_as_ref =
            Snapshot { state: snap_jet.state.clone(), engine: SnapEngine::Ref, fs: None };
        if bytes != jet_as_ref.to_bytes() {
            return CaseOutcome::fail(
                cov,
                "snapshot bytes: jet vs ref",
                format!("engines captured different checkpoint bytes at retire {k} (fuel {fuel})"),
            );
        }

        // Round-trip through the wire format, then resume on each
        // engine for the remaining fuel and compare with the baseline.
        let restored = match Snapshot::from_bytes(&bytes) {
            Ok(s) => s,
            Err(e) => {
                return CaseOutcome::fail(
                    cov,
                    "snapshot decode",
                    format!("self-produced snapshot rejected at retire {k}: {e}"),
                )
            }
        };
        let remaining = fuel - k;

        let mut resumed_ref = restored.restore();
        resumed_ref.run(remaining);
        if !resumed_ref.isa_visible_eq(&base)
            || resumed_ref.instructions_retired != base.instructions_retired
            || resumed_ref.stats != base.stats
        {
            return CaseOutcome::fail(
                cov,
                "resume(ref) vs uninterrupted",
                format!(
                    "ref resume from retire {k} diverged (pc {:#x} vs {:#x}, retired {} vs {})",
                    resumed_ref.pc, base.pc, resumed_ref.instructions_retired, base.instructions_retired
                ),
            );
        }

        let mut resumed_jet = restored.restore_jet();
        resumed_jet.run(remaining);
        let jet_final = resumed_jet.to_state();
        if !jet_final.isa_visible_eq(&base)
            || resumed_jet.instructions_retired != base.instructions_retired
            || resumed_jet.stats != base.stats
        {
            return CaseOutcome::fail(
                cov,
                "resume(jet) vs uninterrupted",
                format!(
                    "jet resume from retire {k} diverged (pc {:#x} vs {:#x}, retired {} vs {})",
                    jet_final.pc, base.pc, resumed_jet.instructions_retired, base.instructions_retired
                ),
            );
        }
        CaseOutcome::pass(cov)
    }
}

// ---- theorems (11)–(13): oracle vs system-call machine code ----

/// Three-way agreement on I/O-performing programs: interpreter with the
/// `basis_ffi` oracle, `machine_sem` (FFI serviced by the oracle), and
/// pure `Next` through the real system-call code.
pub struct SyscallTarget;

impl Target for SyscallTarget {
    fn name(&self) -> &'static str {
        "syscall"
    }

    fn weight(&self) -> u32 {
        2
    }

    fn run_case(&self, ctx: &mut Ctx) -> CaseOutcome {
        let (src, stdin) = gen::ffi_program(ctx);
        let args = ["fuzz"];
        let layout = TargetLayout::default();
        let cfg = CompilerConfig::default();
        let mut cov = CovSnap::new();

        let (prog, _) = match frontend(&src, &cfg) {
            Ok(p) => p,
            Err(e) => {
                return CaseOutcome::fail(cov, "source", format!("generated program rejected: {e}\n{src}"))
            }
        };
        cov.features = program_features(&prog);

        // 1. Interpreter + oracle (the specification).
        let mut host = BasisHost::new(FsState::stdin_only(&args, &stdin));
        let spec_code = match run_program(&prog, &mut host, 2_000_000_000) {
            Ok(out) => out.exit_code,
            Err(Stop::Exit(c)) => c,
            Err(other) => {
                return CaseOutcome::fail(cov, "source", format!("interpreter: {other}\n{src}"))
            }
        };
        let spec_out = host.fs.stdout_utf8();
        let spec_err = host.fs.stderr_utf8();

        let compiled = match compile_source(&src, layout, &cfg) {
            Ok(c) => c,
            Err(e) => return CaseOutcome::fail(cov, "compile", format!("{e}\n{src}")),
        };
        let image = match build_image(&compiled, &args, &stdin) {
            Ok(i) => i,
            Err(e) => return CaseOutcome::fail(cov, "image", format!("{e}\n{src}")),
        };

        // 2. machine_sem: FFI steps serviced by the interference oracle.
        let oracle_run = run_with_oracle(
            image.clone(),
            &layout,
            &compiled.ffi_names,
            FsState::stdin_only(&args, &stdin),
            500_000_000,
        );
        if oracle_run.exit != ExitStatus::Exited(spec_code)
            || oracle_run.stdout_utf8() != spec_out
            || oracle_run.stderr_utf8() != spec_err
        {
            return CaseOutcome::fail(
                cov,
                "oracle vs source",
                format!(
                    "oracle-mode {:?}/{:?} vs interpreter {spec_code}/{spec_out:?} for:\n{src}",
                    oracle_run.exit,
                    oracle_run.stdout_utf8()
                ),
            );
        }

        // 3. Pure `Next` through the real system-call machine code.
        let machine_run = run_to_halt_with(image, &layout, 500_000_000, &mut cov.edges);
        cov.stats = machine_run.state.stats.clone();
        if machine_run.exit != oracle_run.exit
            || machine_run.stdout != oracle_run.stdout
            || machine_run.stderr != oracle_run.stderr
        {
            return CaseOutcome::fail(
                cov,
                "machine vs oracle",
                format!(
                    "machine {:?}/{:?} vs oracle {:?}/{:?} for:\n{src}",
                    machine_run.exit,
                    machine_run.stdout_utf8(),
                    oracle_run.exit,
                    oracle_run.stdout_utf8()
                ),
            );
        }
        CaseOutcome::pass(cov)
    }
}

// ---- registry ----

/// Resolves a `--target` selection to a list of targets.
///
/// # Errors
///
/// An unknown selection name (listing the valid ones).
pub fn registry(selection: &str) -> Result<Vec<Box<dyn Target>>, String> {
    let mut out: Vec<Box<dyn Target>> = Vec::new();
    match selection {
        "all" => {
            out.extend(CompilerTarget::matrix().into_iter().map(|t| Box::new(t) as _));
            out.push(Box::new(LockstepTarget));
            out.push(Box::new(VerilogTarget));
            out.push(Box::new(SyscallTarget));
            out.push(Box::new(JetTarget));
            out.push(Box::new(SnapTarget));
        }
        "t2" => out.extend(CompilerTarget::matrix().into_iter().map(|t| Box::new(t) as _)),
        "t2@jet" | "t2-jet" => {
            out.extend(CompilerTarget::jet_matrix().into_iter().map(|t| Box::new(t) as _));
        }
        "t2@both" => {
            out.extend(CompilerTarget::matrix().into_iter().map(|t| Box::new(t) as _));
            out.extend(CompilerTarget::jet_matrix().into_iter().map(|t| Box::new(t) as _));
        }
        "t9" | "lockstep" => out.push(Box::new(LockstepTarget)),
        "t10" | "verilog" => out.push(Box::new(VerilogTarget)),
        "syscall" | "ffi" => out.push(Box::new(SyscallTarget)),
        "t-jet" | "jet" => out.push(Box::new(JetTarget)),
        "t-snap" | "snap" => out.push(Box::new(SnapTarget)),
        other => {
            return Err(format!(
                "unknown target {other:?}; expected one of: all, t2, t2@jet, t2@both, t9, t10, syscall, t-jet, t-snap"
            ))
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use testkit::rng::TestRng;

    #[test]
    fn registry_resolves_and_rejects() {
        assert_eq!(registry("all").expect("all").len(), 8);
        assert_eq!(registry("t2").expect("t2").len(), 3);
        assert_eq!(registry("t2@jet").expect("t2@jet").len(), 3);
        assert_eq!(registry("t2@both").expect("t2@both").len(), 6);
        assert_eq!(registry("t9").expect("t9").len(), 1);
        assert_eq!(registry("t-jet").expect("t-jet").len(), 1);
        assert_eq!(registry("t-snap").expect("t-snap").len(), 1);
        assert!(registry("bogus").is_err());
    }

    #[test]
    fn compiler_target_passes_and_replays_deterministically() {
        let t = &CompilerTarget::matrix()[0];
        let mut rng = TestRng::seed_from_u64(0xCA5E);
        for _ in 0..4 {
            let mut ctx = Ctx::recording(&mut rng);
            let out = t.run_case(&mut ctx);
            assert_eq!(out.verdict, Verdict::Pass, "{:?}", out.verdict);
            assert!(out.cov.stats.total() > 0, "no instructions retired");
            assert!(out.cov.edges.count() > 0, "no edges observed");
            assert!(out.cov.features.count() > 0, "no features observed");

            // Replaying the recorded choices reproduces the outcome.
            let choices = ctx.recorded_choices().to_vec();
            let again = t.run_case(&mut Ctx::replaying(&choices));
            assert_eq!(again.verdict, out.verdict);
            assert_eq!(again.cov.stats, out.cov.stats);
        }
    }

    #[test]
    fn jet_compiler_target_passes_and_replays_deterministically() {
        let jets = CompilerTarget::jet_matrix();
        assert_eq!(
            jets.iter().map(|t| t.name()).collect::<Vec<_>>(),
            ["t2@jet", "t2-gc@jet", "t2-noopt@jet"],
        );
        let t = &jets[0];
        let mut rng = TestRng::seed_from_u64(0xCA5E);
        let mut ctx = Ctx::recording(&mut rng);
        let out = t.run_case(&mut ctx);
        assert_eq!(out.verdict, Verdict::Pass, "{:?}", out.verdict);
        assert!(out.cov.stats.total() > 0, "no instructions retired on jet");

        let choices = ctx.recorded_choices().to_vec();
        let again = t.run_case(&mut Ctx::replaying(&choices));
        assert_eq!(again.verdict, out.verdict);
        assert_eq!(again.cov.stats, out.cov.stats);
    }

    #[test]
    fn lockstep_target_passes() {
        let mut rng = TestRng::seed_from_u64(9);
        let mut ctx = Ctx::recording(&mut rng);
        let out = LockstepTarget.run_case(&mut ctx);
        assert_eq!(out.verdict, Verdict::Pass, "{:?}", out.verdict);
        assert!(out.cov.stats.total() > 0);
    }

    #[test]
    fn jet_target_passes_and_replays_deterministically() {
        let mut rng = TestRng::seed_from_u64(0x1E7);
        let mut ctx = Ctx::recording(&mut rng);
        let out = JetTarget.run_case(&mut ctx);
        assert_eq!(out.verdict, Verdict::Pass, "{:?}", out.verdict);
        assert!(out.cov.stats.total() > 0);

        let choices = ctx.recorded_choices().to_vec();
        let again = JetTarget.run_case(&mut Ctx::replaying(&choices));
        assert_eq!(again.verdict, out.verdict);
        assert_eq!(again.cov.stats, out.cov.stats);
    }

    #[test]
    fn snap_target_passes_and_replays_deterministically() {
        let mut rng = TestRng::seed_from_u64(0x5A9);
        let mut ctx = Ctx::recording(&mut rng);
        let out = SnapTarget.run_case(&mut ctx);
        assert_eq!(out.verdict, Verdict::Pass, "{:?}", out.verdict);
        assert!(out.cov.stats.total() > 0);

        let choices = ctx.recorded_choices().to_vec();
        let again = SnapTarget.run_case(&mut Ctx::replaying(&choices));
        assert_eq!(again.verdict, out.verdict);
        assert_eq!(again.cov.stats, out.cov.stats);
    }

    #[test]
    fn syscall_target_passes() {
        let mut rng = TestRng::seed_from_u64(77);
        let mut ctx = Ctx::recording(&mut rng);
        let out = SyscallTarget.run_case(&mut ctx);
        assert_eq!(out.verdict, Verdict::Pass, "{:?}", out.verdict);
        assert!(out.cov.features.count() > 0);
    }
}
