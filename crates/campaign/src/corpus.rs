//! Corpus management: deduplicated, size-capped, replayable seeds.
//!
//! A corpus entry is a target name plus the recorded `testkit` choice
//! stream that produced an interesting case (one that added coverage).
//! Entries are persisted one file per entry under a `corpus/` directory
//! as plain text — first line the target name, second line the choices
//! in hexadecimal — so a seed file is directly replayable with
//! `silver-fuzz --replay <file>` and diffs legibly in review.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

/// Hard cap on choices kept per entry; longer streams are truncated
/// (replay reads past the end yield the simplest choice, so a truncated
/// stream still replays to a well-formed case).
pub const MAX_CHOICES: usize = 512;

/// Hard cap on corpus entries; once full, new coverage no longer admits
/// entries (the cap bounds both memory and the `corpus/` directory).
pub const MAX_ENTRIES: usize = 512;

/// One interesting case: a target and the choice stream reproducing it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Target the choices are meant for.
    pub target: String,
    /// Recorded choice stream (possibly truncated to [`MAX_CHOICES`]).
    pub choices: Vec<u64>,
}

impl CorpusEntry {
    /// Builds an entry, truncating over-long choice streams.
    #[must_use]
    pub fn new(target: &str, mut choices: Vec<u64>) -> Self {
        choices.truncate(MAX_CHOICES);
        CorpusEntry { target: target.to_string(), choices }
    }

    /// A stable content hash (SplitMix64 avalanche fold) for dedup and
    /// file naming.
    #[must_use]
    pub fn hash(&self) -> u64 {
        let mut h = 0x9E37_79B9_7F4A_7C15u64;
        for b in self.target.bytes() {
            h = mix(h ^ u64::from(b));
        }
        for &c in &self.choices {
            h = mix(h ^ c);
        }
        h
    }

    /// Renders the two-line seed-file format.
    #[must_use]
    pub fn render(&self) -> String {
        let hex: Vec<String> = self.choices.iter().map(|c| format!("{c:x}")).collect();
        format!("{}\n{}\n", self.target, hex.join(" "))
    }

    /// Parses the seed-file format produced by [`CorpusEntry::render`].
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        let mut lines = text.lines();
        let target = lines.next()?.trim();
        if target.is_empty() || target.starts_with('#') {
            return None;
        }
        let choices: Option<Vec<u64>> = lines
            .next()
            .unwrap_or("")
            .split_whitespace()
            .map(|w| u64::from_str_radix(w, 16).ok())
            .collect();
        Some(CorpusEntry::new(target, choices?))
    }
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The in-memory corpus: insertion-ordered entries with content dedup.
#[derive(Clone, Debug, Default)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    hashes: BTreeSet<u64>,
}

impl Corpus {
    /// An empty corpus.
    #[must_use]
    pub fn new() -> Self {
        Corpus::default()
    }

    /// All entries, in insertion order.
    #[must_use]
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Entries for one target, in insertion order.
    pub fn for_target<'a>(&'a self, target: &'a str) -> impl Iterator<Item = &'a CorpusEntry> {
        self.entries.iter().filter(move |e| e.target == target)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds an entry unless it is a duplicate or the corpus is full.
    /// Returns whether it was admitted.
    pub fn add(&mut self, entry: CorpusEntry) -> bool {
        if self.entries.len() >= MAX_ENTRIES {
            return false;
        }
        let h = entry.hash();
        if !self.hashes.insert(h) {
            return false;
        }
        self.entries.push(entry);
        true
    }

    /// Loads every `*.seed` file under `dir` (missing dir = empty
    /// corpus). Files are visited in sorted name order so the load is
    /// deterministic.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than a missing directory.
    pub fn load(dir: &Path) -> io::Result<Corpus> {
        let mut corpus = Corpus::new();
        let rd = match fs::read_dir(dir) {
            Ok(rd) => rd,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(corpus),
            Err(e) => return Err(e),
        };
        let mut paths: Vec<_> = rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "seed"))
            .collect();
        paths.sort();
        for p in paths {
            if let Some(entry) = CorpusEntry::parse(&fs::read_to_string(&p)?) {
                corpus.add(entry);
            }
        }
        Ok(corpus)
    }

    /// Writes every entry to `dir` as `<target>-<hash>.seed`, creating
    /// the directory if needed. Existing files for the same content are
    /// overwritten byte-identically; returns how many files were
    /// written.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, dir: &Path) -> io::Result<usize> {
        fs::create_dir_all(dir)?;
        for e in &self.entries {
            let name = format!("{}-{:016x}.seed", e.target, e.hash());
            fs::write(dir.join(name), e.render())?;
        }
        Ok(self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trips() {
        let e = CorpusEntry::new("t2", vec![0, 7, 0xDEAD_BEEF, u64::MAX]);
        let back = CorpusEntry::parse(&e.render()).expect("parses");
        assert_eq!(back, e);
        assert_eq!(back.hash(), e.hash());
        // Different content hashes differently.
        assert_ne!(CorpusEntry::new("t2", vec![1]).hash(), e.hash());
        assert_ne!(CorpusEntry::new("t9", e.choices.clone()).hash(), e.hash());
    }

    #[test]
    fn dedup_and_caps() {
        let mut c = Corpus::new();
        assert!(c.add(CorpusEntry::new("t2", vec![1, 2, 3])));
        assert!(!c.add(CorpusEntry::new("t2", vec![1, 2, 3])), "duplicate admitted");
        assert!(c.add(CorpusEntry::new("t9", vec![1, 2, 3])));
        assert_eq!(c.len(), 2);
        assert_eq!(c.for_target("t2").count(), 1);

        // Over-long choice streams are truncated at construction.
        let long = CorpusEntry::new("t2", vec![9; MAX_CHOICES * 2]);
        assert_eq!(long.choices.len(), MAX_CHOICES);
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("campaign-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut c = Corpus::new();
        c.add(CorpusEntry::new("t2", vec![3, 1, 4, 1, 5]));
        c.add(CorpusEntry::new("t9", vec![2, 7]));
        assert_eq!(c.save(&dir).expect("save"), 2);
        let back = Corpus::load(&dir).expect("load");
        assert_eq!(back.len(), 2);
        let mut got: Vec<_> = back.entries().to_vec();
        got.sort_by(|a, b| a.target.cmp(&b.target));
        assert_eq!(got[0], CorpusEntry::new("t2", vec![3, 1, 4, 1, 5]));
        assert_eq!(got[1], CorpusEntry::new("t9", vec![2, 7]));
        let _ = fs::remove_dir_all(&dir);
    }
}
