//! # campaign — coverage-guided differential-testing campaigns
//!
//! The paper proves its theorems once; this reproduction *checks* them,
//! continuously, on randomly generated programs. `campaign` is the
//! engine for doing that at scale: a coverage-guided fuzzer whose
//! "targets" are the repo's theorem-analog relations —
//!
//! * interpreter ↔ compiled ISA code (theorem (2), per compiler
//!   configuration including the GC build),
//! * ISA ↔ circuit lockstep (theorem (9)),
//! * circuit ↔ generated Verilog (theorem (10)),
//! * FFI oracle ↔ real system-call machine code (theorems (11)–(13)),
//! * and, registered from the `silver-stack` crate, the full end-to-end
//!   stack (theorem (8)).
//!
//! Three coverage signals guide the search ([`coverage`]): per-opcode
//! retire counters and PC-edge bitmaps from `ag32`, and source-feature
//! sets from `cakeml`. Cases that add coverage enter a deduplicated,
//! size-capped, file-persisted [`corpus`]; later cases mutate corpus
//! choice streams as often as they generate fresh ones ([`gen`]).
//! Execution is sharded and *deterministic* ([`engine`]): same seed and
//! case budget ⇒ byte-identical JSON report. Failures are triaged
//! automatically ([`triage`]): the diverging layer pair is named, the
//! choice stream is shrunk with the testkit minimiser, and a one-line
//! `silver-fuzz --replay` command is appended to a
//! `*.testkit-regressions` file.
//!
//! The `silver-fuzz` CLI in the `silver-stack` crate fronts all of this.
//!
//! # Example
//!
//! ```
//! use campaign::{registry, run_campaign, Budget, CampaignConfig};
//!
//! let targets = registry("t2").unwrap();
//! let cfg = CampaignConfig {
//!     seed: 1,
//!     shards: 2,
//!     budget: Budget::Cases(8),
//!     ..CampaignConfig::default()
//! };
//! let report = run_campaign(&targets, &cfg);
//! assert_eq!(report.cases, 8);
//! assert!(report.failures.is_empty());
//! ```

pub mod corpus;
pub mod coverage;
pub mod engine;
pub mod gen;
pub mod report;
pub mod targets;
pub mod triage;

pub use corpus::{Corpus, CorpusEntry};
pub use coverage::{CovSnap, GlobalCoverage};
pub use engine::{replay_case, run_campaign, run_campaign_metered, Budget, CampaignConfig};
pub use report::{CampaignReport, FailureRecord, TargetReport};
pub use targets::{registry, CaseOutcome, Target, Verdict};
pub use triage::{minimise, parse_replay, repro_line, triage_failure};
