//! Campaign reports: a deterministic JSON-lines record plus a human
//! summary.
//!
//! The JSON body contains only fields that are a pure function of the
//! campaign's seed and case budget — byte-identical across runs and
//! machines — so the smoke tests can assert determinism on the raw
//! bytes. Wall-clock time and throughput are *not* in the JSON; they go
//! to the human summary (stderr) instead.

use std::io;
use std::path::Path;
use std::time::Duration;

/// One divergence found by the campaign.
#[derive(Clone, Debug)]
pub struct FailureRecord {
    /// Target that found it.
    pub target: String,
    /// Layer (pair) blamed, e.g. `"isa vs source"`.
    pub layer: String,
    /// Human-readable detail.
    pub message: String,
    /// The choice stream that produced the failing case.
    pub choices: Vec<u64>,
    /// Shrunk choice stream, when triage ran.
    pub minimized: Option<Vec<u64>>,
    /// One-line `silver-fuzz --replay` command, when triage ran.
    pub repro: Option<String>,
}

/// Per-target tallies.
#[derive(Clone, Debug)]
pub struct TargetReport {
    /// Target name.
    pub name: String,
    /// Cases run.
    pub cases: u64,
    /// Failing cases.
    pub failures: u64,
    /// Distinct opcodes retired.
    pub opcodes: usize,
    /// Opcode coverage percent (0–100).
    pub opcode_pct: f64,
    /// Distinct PC edges seen.
    pub edges: usize,
    /// Distinct source features seen.
    pub features: usize,
}

/// The whole campaign's outcome.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Master seed.
    pub seed: u64,
    /// Shard count.
    pub shards: usize,
    /// Rounds executed.
    pub rounds: u64,
    /// Total cases across all targets.
    pub cases: u64,
    /// Corpus size after the campaign.
    pub corpus_len: usize,
    /// Per-target tallies, in registry order.
    pub targets: Vec<TargetReport>,
    /// Divergences, in discovery order.
    pub failures: Vec<FailureRecord>,
    /// Wall-clock duration (kept out of the JSON on purpose).
    pub wall: Duration,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn hex_list(choices: &[u64]) -> String {
    let parts: Vec<String> = choices.iter().map(|c| format!("{c:x}")).collect();
    parts.join(",")
}

impl CampaignReport {
    /// The deterministic JSON-lines rendition (one object per line:
    /// campaign header, then targets, then failures).
    #[must_use]
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"suite\":\"campaign\",\"seed\":{},\"shards\":{},\"rounds\":{},\
             \"cases\":{},\"failures\":{},\"corpus\":{}}}\n",
            self.seed,
            self.shards,
            self.rounds,
            self.cases,
            self.failures.len(),
            self.corpus_len,
        ));
        for t in &self.targets {
            out.push_str(&format!(
                "{{\"target\":\"{}\",\"cases\":{},\"failures\":{},\"opcodes\":{},\
                 \"opcode_pct\":{:.1},\"edges\":{},\"features\":{}}}\n",
                esc(&t.name),
                t.cases,
                t.failures,
                t.opcodes,
                t.opcode_pct,
                t.edges,
                t.features,
            ));
        }
        for f in &self.failures {
            let msg: String = f.message.chars().take(200).collect();
            out.push_str(&format!(
                "{{\"failure\":{{\"target\":\"{}\",\"layer\":\"{}\",\"message\":\"{}\",\
                 \"choices\":\"{}\"{}{}}}}}\n",
                esc(&f.target),
                esc(&f.layer),
                esc(&msg),
                hex_list(&f.choices),
                f.minimized
                    .as_ref()
                    .map(|m| format!(",\"minimized\":\"{}\"", hex_list(m)))
                    .unwrap_or_default(),
                f.repro
                    .as_ref()
                    .map(|r| format!(",\"repro\":\"{}\"", esc(r)))
                    .unwrap_or_default(),
            ));
        }
        out
    }

    /// Writes [`CampaignReport::json_lines`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.json_lines())
    }

    /// The human summary, including the nondeterministic wall-clock and
    /// throughput numbers the JSON deliberately omits.
    #[must_use]
    pub fn summary(&self) -> String {
        let secs = self.wall.as_secs_f64();
        let rate = if secs > 0.0 { self.cases as f64 / secs } else { 0.0 };
        let mut out = format!(
            "campaign: seed {:#x}, {} shard(s), {} round(s), {} cases in {:.1}s ({:.0} cases/s), \
             corpus {}, {} failure(s)\n",
            self.seed,
            self.shards,
            self.rounds,
            self.cases,
            secs,
            rate,
            self.corpus_len,
            self.failures.len(),
        );
        for t in &self.targets {
            out.push_str(&format!(
                "  {:<9} {:>6} cases  {:>2} failures  opcodes {:>2}/{} ({:.0}%)  edges {:>5}  features {:>2}\n",
                t.name,
                t.cases,
                t.failures,
                t.opcodes,
                ag32::Opcode::COUNT,
                t.opcode_pct,
                t.edges,
                t.features,
            ));
        }
        for f in &self.failures {
            out.push_str(&format!(
                "  FAILURE [{}] {}: {}\n",
                f.target,
                f.layer,
                f.message.lines().next().unwrap_or(""),
            ));
            if let Some(r) = &f.repro {
                out.push_str(&format!("    repro: {r}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_deterministic_and_escaped() {
        let rep = CampaignReport {
            seed: 1,
            shards: 2,
            rounds: 3,
            cases: 10,
            corpus_len: 4,
            targets: vec![TargetReport {
                name: "t2".into(),
                cases: 10,
                failures: 1,
                opcodes: 5,
                opcode_pct: 31.25,
                edges: 7,
                features: 3,
            }],
            failures: vec![FailureRecord {
                target: "t2".into(),
                layer: "isa vs source".into(),
                message: "exit 1 vs 2 for:\n\"x\"".into(),
                choices: vec![1, 255],
                minimized: Some(vec![1]),
                repro: Some("silver-fuzz --target t2 --replay t2:1".into()),
            }],
            wall: Duration::from_secs(9),
        };
        let j1 = rep.json_lines();
        let j2 = rep.clone().json_lines();
        assert_eq!(j1, j2);
        assert!(j1.contains("\"choices\":\"1,ff\""));
        assert!(j1.contains("\\n\\\"x\\\""), "newline/quote not escaped: {j1}");
        // Wall-clock stays out of the JSON but shows in the summary.
        assert!(!j1.contains("9.0"));
        assert!(rep.summary().contains("9.0s"));
    }
}
