//! Cross-crate layer tests: Figure 1 walked top to bottom for one
//! program, exercising each artefact boundary explicitly (rather than
//! through the convenience API).

use basis::{build_image, run_to_halt, run_with_oracle, ExitStatus, FsState};
use cakeml::{compile_source, CompilerConfig, TargetLayout};
use silver_stack::{Backend, RunConfig, Stack};

const SRC: &str = r#"
fun tri n = if n = 0 then 0 else n + tri (n - 1);
val _ = print (int_to_string (tri 36) ^ "\n");
"#;

#[test]
fn layers_compose_manually() {
    let layout = TargetLayout::default();
    let cfg = CompilerConfig::default();

    // Layer: compiler (theorem 3).
    let compiled = compile_source(SRC, layout, &cfg).expect("compiles");
    assert!(compiled.fun_count > 10, "prelude functions compiled in");

    // Layer: image (initAg).
    let image = build_image(&compiled, &["tri"], b"").expect("image");

    // Layer: ISA with real system calls (theorem 6).
    let isa = run_to_halt(image.clone(), &layout, 1_000_000_000);
    assert_eq!(isa.exit, ExitStatus::Exited(0));
    assert_eq!(isa.stdout_utf8(), "666\n");

    // Layer: machine_sem with the interference oracle (theorem 4).
    let oracle = run_with_oracle(
        image.clone(),
        &layout,
        &compiled.ffi_names,
        FsState::stdin_only(&["tri"], b""),
        1_000_000_000,
    );
    assert_eq!(oracle.exit, isa.exit);
    assert_eq!(oracle.stdout, isa.stdout);

    // Layer: the circuit-level processor (theorems 9 + 6 composed).
    let stack = Stack::new();
    let rtl = stack.run_image(image, Backend::Rtl, &RunConfig::default()).expect("rtl runs");
    assert_eq!(rtl.exit_code(), Some(0));
    assert_eq!(rtl.stdout_utf8(), "666\n");
    let cycles = rtl.cycles.expect("cycle count");
    assert!(
        cycles > isa.instructions,
        "an instruction cycle takes multiple clock cycles (§4.2)"
    );
}

#[test]
fn verilog_artifact_emits_for_synthesis() {
    // Layer 4 → 5 boundary: the pretty-printed Verilog the paper hands
    // to Vivado.
    let module = rtl::generate(&silver::silver_cpu()).expect("codegen");
    let text = verilog::pretty::print_module(&module);
    assert!(text.contains("module silver_cpu("));
    assert!(text.len() > 5_000, "a real CPU, not a stub");
    // And the correspondence check behind it (theorem 10) holds on a
    // short random-latency run.
    silver::check_cpu_verilog_equiv(
        &ag32::State::new(),
        silver::MemEnvConfig::default(),
        100,
    )
    .expect("cpu circuit and generated verilog agree");
}

#[test]
fn out_of_memory_is_a_clean_behaviour() {
    // extend_with_oom (§2.3): heap exhaustion is an allowed behaviour
    // with a defined exit code, at every level.
    let stack = Stack::new();
    let src = "fun grow xs = grow (0 :: xs); val _ = grow [];";
    let isa = stack
        .run_source(src, &["oom"], b"", Backend::Isa, &RunConfig::default())
        .unwrap();
    assert_eq!(isa.exit_code(), Some(cakeml::ast::EXIT_OOM));
}
