//! Repo-level end-to-end tests: the paper's §7 "Results", reproduced.
//!
//! Every application from the paper's suite runs on the stack and its
//! behaviour is checked against the source semantics at the ISA and
//! circuit level (and, for a small program, at the Verilog level) —
//! the executable analogues of theorems (6), (8) and (14).

use silver_stack::{apps, check_end_to_end, Backend, CheckOptions, RunConfig, Stack};

fn check(src: &str, args: &[&str], stdin: &[u8]) -> silver_stack::EndToEndReport {
    let stack = Stack::new();
    check_end_to_end(&stack, src, args, stdin, &CheckOptions::default())
        .expect("all layers agree")
}

#[test]
fn hello_end_to_end() {
    let report = check(apps::HELLO, &["hello"], b"");
    assert_eq!(report.stdout, "Hello from the verified stack!\n");
    assert_eq!(report.exit_code, 0);
    assert!(report.rtl_cycles > report.isa_instructions, "wait states cost clock cycles");
}

#[test]
fn wc_end_to_end_matches_spec() {
    // wc_spec input output (§2.1): output reports |tokens is_space input|.
    let input = b"the quick brown fox\njumps over the lazy dog\n";
    let report = check(apps::WC, &["wc"], input);
    let words = input
        .split(|b| b" \n\t\r".contains(b))
        .filter(|w| !w.is_empty())
        .count();
    let lines = input.iter().filter(|&&b| b == b'\n').count();
    assert_eq!(
        report.stdout,
        format!("{lines} {words} {}\n", input.len()),
        "wc output must satisfy wc_spec"
    );
}

#[test]
fn cat_end_to_end() {
    let input = b"first line\nsecond line\nno trailing newline";
    let report = check(apps::CAT, &["cat"], input);
    assert_eq!(report.stdout.as_bytes(), input);
}

#[test]
fn sort_end_to_end() {
    let input = b"pear\napple\nbanana\ncherry\napple\n";
    let report = check(apps::SORT, &["sort"], input);
    assert_eq!(report.stdout, "apple\napple\nbanana\ncherry\npear\n");
}

#[test]
fn proof_checker_end_to_end() {
    // Derive |- a -> a from K and S (the classic SKK proof):
    //   0: S a (a->a) a : (a->((a->a)->a)) -> ((a->(a->a)) -> (a->a))
    //   1: K a (a->a)   : a -> ((a->a) -> a)
    //   2: MP 0 1       : (a -> (a -> a)) -> (a -> a)
    //   3: K a a        : a -> (a -> a)
    //   4: MP 2 3       : a -> a
    let proof = "S a iaa a\nK a iaa\nMP 0 1\nK a a\nMP 2 3\n";
    let report = check(apps::PROOF_CHECKER, &["check"], proof.as_bytes());
    assert_eq!(report.exit_code, 0);
    let last = report.stdout.lines().last().unwrap();
    assert_eq!(last, "|- (a -> a)", "the checker derives the identity theorem");
}

#[test]
fn proof_checker_rejects_bad_proof() {
    let stack = Stack::new();
    let bad = "K a b\nK b c\nMP 0 1\n"; // antecedent mismatch
    let r = stack
        .run_source(
            apps::PROOF_CHECKER,
            &["check"],
            bad.as_bytes(),
            Backend::Isa,
            &RunConfig::default(),
        )
        .unwrap();
    assert_eq!(r.exit_code(), Some(1));
    assert!(r.stdout_utf8().contains("invalid step"));
}

#[test]
fn grep_end_to_end() {
    let input = b"alpha beta\ngamma\nbeta gamma\ndelta\n";
    let report = check(apps::GREP, &["grep", "beta"], input);
    assert_eq!(report.stdout, "alpha beta\nbeta gamma\n");
    assert_eq!(report.exit_code, 0);
    // No match exits 1 with empty output, like the Unix tool.
    let stack = Stack::new();
    let r = stack
        .run_source(apps::GREP, &["grep", "zeta"], input, Backend::Isa, &RunConfig::default())
        .unwrap();
    assert_eq!(r.exit_code(), Some(1));
    assert!(r.stdout.is_empty());
}

#[test]
fn compiler_runs_on_the_verified_stack() {
    // §7's headline: the compiler itself executes on Silver. The mini
    // compiler reads an arithmetic program and emits Silver-flavoured
    // assembly — all while running on the simulated verified processor.
    let report = check(apps::MINI_COMPILER, &["minicc"], b"(1 + 2) * (3 + 4) - 5\n");
    assert_eq!(report.exit_code, 0);
    let out = &report.stdout;
    assert!(out.contains("mini compiler output"));
    assert!(out.contains("LoadConstant r1, 1"));
    assert!(out.contains("Normal fMul"));
    assert!(out.contains("Normal fSub"));
    assert!(out.ends_with("Out r1 ; = 16\n"), "evaluator agrees: {out}");
}

#[test]
fn tiny_program_agrees_down_to_verilog() {
    // Theorem (8): the Verilog-level run satisfies the source spec. The
    // Verilog interpreter is slow, so use a small program, and also
    // spot-check the ISA↔circuit lockstep relation on the same image.
    let stack = Stack::new();
    let report = check_end_to_end(
        &stack,
        "val _ = print (int_to_string (6 * 7));",
        &["tiny"],
        b"",
        &CheckOptions { verilog: true, lockstep_instructions: 300, ..CheckOptions::default() },
    )
    .expect("all four layers agree");
    assert_eq!(report.stdout, "42");
    assert!(report.verilog_cycles.is_some());
}

#[test]
fn stdin_larger_inputs_roundtrip() {
    let mut input = Vec::new();
    for i in 0..500 {
        input.extend_from_slice(format!("line number {i:04}\n").as_bytes());
    }
    let stack = Stack::new();
    let r = stack
        .run_source(apps::CAT, &["cat"], &input, Backend::Isa, &RunConfig::default())
        .unwrap();
    assert_eq!(r.stdout, input);
}
