//! Full-stack crash-resume: a real compiled application, interrupted at
//! an arbitrary retire count and resumed from its rolling checkpoint
//! file, is indistinguishable from the uninterrupted run — across the
//! whole capture-engine × resume-engine matrix (ref→ref, ref→jet,
//! jet→ref, jet→jet). This is `testkit::crash_resume_equiv` driven
//! through the public `Stack` API and the on-disk snapshot format, the
//! way `silverc --checkpoint/--resume` exercises it.

use std::path::PathBuf;

use silver_stack::{
    apps, Backend, Engine, ExitStatus, RunConfig, SnapEngine, Snapshot, Stack, StackError,
};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("silver-ckpt-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Everything the crash-resume contract preserves.
type Outcome = (ExitStatus, Vec<u8>, Vec<u8>, u64, Option<ag32::ExecStats>);

fn outcome(r: &silver_stack::StackResult) -> Outcome {
    (r.exit.clone(), r.stdout.clone(), r.stderr.clone(), r.instructions, r.stats.clone())
}

fn engine_rc(engine: Engine) -> RunConfig {
    RunConfig { engine, ..RunConfig::default() }
}

#[test]
fn crash_resume_matrix_over_a_real_app() {
    let stack = Stack::new();
    let compiled = stack.compile(apps::SORT).expect("sort compiles");
    let image = stack
        .load(&compiled, &["sort"], b"pear\napple\nbanana\ncherry\napple\n")
        .expect("image loads");

    let baseline = stack
        .run_image(image.clone(), Backend::Isa, &engine_rc(Engine::Ref))
        .expect("uninterrupted run");
    let total = baseline.instructions;
    assert!(total > 1_000, "workload too small to interrupt meaningfully");
    let kill_points = [total / 7, total / 2, total - 1];

    for capture in [Engine::Ref, Engine::Jet] {
        for resume in [Engine::Ref, Engine::Jet] {
            let dir = scratch(&format!("{capture:?}-{resume:?}"));
            testkit::crash_resume_equiv(
                &kill_points,
                || outcome(&baseline),
                |k| {
                    // Simulate the crash: run out of fuel at retire k
                    // with the rolling checkpoint landing exactly there,
                    // keep only what survived on disk.
                    let path = dir.join(format!("kill-{k}.snap"));
                    let rc = RunConfig {
                        fuel: k,
                        checkpoint: Some(path.clone()),
                        checkpoint_interval: Some(k),
                        ..engine_rc(capture)
                    };
                    let interrupted = stack
                        .run_image(image.clone(), Backend::Isa, &rc)
                        .expect("interrupted run itself succeeds");
                    assert_eq!(interrupted.exit, ExitStatus::OutOfFuel);
                    Snapshot::read_from(&path).expect("rolling checkpoint file loads")
                },
                |snap| {
                    assert!(snap.retired() > 0, "checkpoint captured mid-run");
                    let r = stack
                        .resume_snapshot(&snap, &engine_rc(resume))
                        .expect("resume succeeds");
                    outcome(&r)
                },
            )
            .unwrap_or_else(|report| panic!("{capture:?} -> {resume:?}: {report}"));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn rolling_checkpoint_bytes_are_deterministic_and_engine_independent() {
    let stack = Stack::new();
    let compiled = stack.compile(apps::WC).expect("wc compiles");
    let image = stack.load(&compiled, &["wc"], b"some words here\n").expect("image loads");
    let dir = scratch("determinism");
    let k = 20_000u64;

    let mut files = Vec::new();
    for (label, engine) in [("ref-a", Engine::Ref), ("ref-b", Engine::Ref), ("jet", Engine::Jet)]
    {
        let path = dir.join(format!("{label}.snap"));
        let rc = RunConfig {
            fuel: k,
            checkpoint: Some(path.clone()),
            checkpoint_interval: Some(k),
            ..engine_rc(engine)
        };
        stack.run_image(image.clone(), Backend::Isa, &rc).expect("interrupted run");
        files.push(std::fs::read(&path).expect("checkpoint written"));
    }

    assert_eq!(files[0], files[1], "two identical runs write identical checkpoint bytes");
    // The jet capture differs only in the provenance byte.
    let jet_snap = Snapshot::from_bytes(&files[2]).expect("jet checkpoint loads");
    assert_eq!(jet_snap.engine, SnapEngine::Jet);
    assert_eq!(
        Snapshot { engine: SnapEngine::Ref, ..jet_snap }.to_bytes(),
        files[0],
        "ref and jet rolling checkpoints are byte-identical modulo provenance"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_from_corrupt_file_is_a_typed_error() {
    let stack = Stack::new();
    let dir = scratch("corrupt");
    let path = dir.join("garbage.snap");
    std::fs::write(&path, b"this is not a snapshot").expect("write garbage");
    match stack.resume_file(&path, &RunConfig::default()) {
        Err(StackError::Snapshot(_)) => {}
        other => panic!("expected StackError::Snapshot, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
