//! Engine-equivalence tests: the jet translation-cache engine must be
//! observationally identical to the reference interpreter on the whole
//! application suite (theorem J at the stack level), shadow mode must
//! pass cleanly on real programs, a divergence must surface as a
//! structured [`StackError::Divergence`] with forensics naming the
//! divergent retire, and `check_end_to_end` must attribute jet-engine
//! runs to the `jet` layer.

use silver_stack::{
    apps, check_end_to_end, Backend, CheckOptions, Engine, RunConfig, Stack, StackError,
};

/// Arguments and stdin that drive each suite app through real work.
fn workload(name: &str) -> (Vec<&'static str>, &'static [u8]) {
    match name {
        "hello" => (vec!["hello"], b""),
        "wc" => (vec!["wc"], b"the quick brown fox\njumps over the lazy dog\n"),
        "cat" => (vec!["cat"], b"first\nsecond\nno trailing newline"),
        "sort" => (vec!["sort"], b"pear\napple\nbanana\ncherry\napple\n"),
        "grep" => (vec!["grep", "beta"], b"alpha beta\ngamma\nbeta gamma\ndelta\n"),
        "proof_checker" => {
            (vec!["check"], b"S a iaa a\nK a iaa\nMP 0 1\nK a a\nMP 2 3\n")
        }
        "mini_compiler" => (vec!["minicc"], b"(1 + 2) * (3 + 4) - 5\n"),
        other => panic!("unknown app {other}"),
    }
}

fn rc(engine: Engine, shadow: Option<u64>) -> RunConfig {
    RunConfig { engine, shadow, ..RunConfig::default() }
}

#[test]
fn every_app_is_byte_identical_across_engines() {
    let stack = Stack::new();
    for &(name, src) in apps::ALL {
        let (args, stdin) = workload(name);
        let reference = stack
            .run_source(src, &args, stdin, Backend::Isa, &rc(Engine::Ref, None))
            .unwrap_or_else(|e| panic!("{name} on ref engine: {e}"));
        let jet = stack
            .run_source(src, &args, stdin, Backend::Isa, &rc(Engine::Jet, None))
            .unwrap_or_else(|e| panic!("{name} on jet engine: {e}"));
        assert_eq!(jet.exit_code(), reference.exit_code(), "{name}: exit status");
        assert_eq!(jet.stdout, reference.stdout, "{name}: stdout bytes");
        assert_eq!(jet.stderr, reference.stderr, "{name}: stderr bytes");
        assert_eq!(jet.instructions, reference.instructions, "{name}: retire count");
        assert_eq!(jet.stats, reference.stats, "{name}: per-opcode retire counters");
    }
}

#[test]
fn shadow_mode_passes_on_a_real_program() {
    // Sampled shadow (PC every retire, full register file every 64) on
    // the sort app: theorem J checked live over a compiled workload.
    let stack = Stack::new();
    let (args, stdin) = workload("sort");
    let r = stack
        .run_source(apps::SORT, &args, stdin, Backend::Isa, &rc(Engine::Jet, Some(64)))
        .expect("shadowed jet run agrees with the reference");
    assert_eq!(r.exit_code(), Some(0));
    assert_eq!(r.stdout_utf8(), "apple\napple\nbanana\ncherry\npear\n");
}

#[test]
fn injected_executor_bug_is_caught_by_shadow_with_forensics() {
    // A one-bit ALU fault in the jet executor must be caught by the
    // shadow oracle on a real compiled image, and the forensics report
    // must name the divergent retire.
    let stack = Stack::new();
    let compiled = stack.compile(apps::WC).expect("compiles");
    let (args, stdin) = workload("wc");
    let image = stack.load(&compiled, &args, stdin).expect("image");
    let fx = jet::run_shadow(&image, 4_000_000_000, 1, 1 << 5)
        .expect_err("a faulty executor must not pass shadow");
    assert!(fx.divergent_step.is_some(), "forensics names the divergent retire");
    assert!(!fx.deltas.is_empty(), "forensics lists differing fields");
    let text = fx.render();
    assert!(text.contains("divergent step"), "{text}");
    assert!(text.contains("theorem J"), "{text}");
}

#[test]
fn divergence_surfaces_as_a_structured_stack_error() {
    // End to end through the Stack API: a shadow divergence comes back
    // as StackError::Divergence carrying the forensics, and its Display
    // form includes the report. (No real divergence exists, so inject
    // one through the jet fault hook via a direct shadow run — the
    // stack error constructor is the same path `run_image` uses.)
    let stack = Stack::new();
    let compiled = stack.compile(apps::HELLO).expect("compiles");
    let image = stack.load(&compiled, &["hello"], b"").expect("image");
    let fx = jet::run_shadow(&image, 4_000_000_000, 1, 1).expect_err("fault caught");
    let err = StackError::Divergence(fx);
    let text = err.to_string();
    assert!(text.contains("shadow divergence"), "{text}");
    assert!(text.contains("divergent step"), "{text}");
}

#[test]
fn check_end_to_end_attributes_the_jet_layer() {
    // The checker runs the ISA layer on the jet engine and still agrees
    // with the source semantics and the circuit.
    let stack = Stack::new();
    let opts = CheckOptions { engine: Engine::Jet, ..CheckOptions::default() };
    let report = check_end_to_end(
        &stack,
        apps::HELLO,
        &["hello"],
        b"",
        &opts,
    )
    .expect("all layers agree under the jet engine");
    assert_eq!(report.exit_code, 0);
    assert_eq!(report.stdout, "Hello from the verified stack!\n");
    assert!(report.isa_instructions > 0);
}
