#!/usr/bin/env bash
# Tier-1 CI for the silver-stack workspace.
#
# Everything here is hermetic: no registry access is required (or
# attempted — the build falls back to --offline when the network is
# unavailable), randomness comes only from the in-tree `testkit` PRNG
# seeded by TESTKIT_SEED, and a guard asserts no crate outside
# crates/testkit reaches for proptest / rand / criterion again.
#
# Usage: scripts/ci.sh
#   TESTKIT_SEED=0x...  derive all property-test cases from this seed
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dependency hygiene guard =="
# No crate outside testkit may mention the old external dependencies.
# (testkit itself only names them in docs/comments.)
violations=$(grep -RnE '\bproptest\b|\brand::|\bcriterion\b' \
    --include='*.rs' --include='Cargo.toml' crates \
    | grep -v '^crates/testkit/' \
    | grep -vE '//.*(proptest|rand|criterion)|#!?\[.*\]|^\s*#' \
    || true)
if [ -n "$violations" ]; then
    echo "forbidden external test dependencies referenced outside crates/testkit:" >&2
    echo "$violations" >&2
    exit 1
fi
echo "ok: no proptest / rand:: / criterion outside crates/testkit"

echo "== build (release) =="
if ! cargo build --release 2>/dev/null; then
    echo "online build failed; retrying with --offline"
    cargo build --release --offline
fi

echo "== tests =="
cargo test -q

echo "== benches compile =="
cargo build --benches -p bench --offline 2>/dev/null || cargo build --benches -p bench

echo "CI green (TESTKIT_SEED=${TESTKIT_SEED:-default})"
