#!/usr/bin/env bash
# Tier-1 CI for the silver-stack workspace.
#
# Everything here is hermetic: no registry access is required (or
# attempted — the build falls back to --offline when the network is
# unavailable), randomness comes only from the in-tree `testkit` PRNG
# seeded by TESTKIT_SEED, and a guard asserts no crate outside
# crates/testkit reaches for proptest / rand / criterion again.
#
# Usage: scripts/ci.sh
#   TESTKIT_SEED=0x...  derive all property-test cases from this seed
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dependency hygiene guard =="
# No crate outside testkit may mention the old external dependencies.
# (testkit itself only names them in docs/comments.)
violations=$(grep -RnE '\bproptest\b|\brand::|\bcriterion\b' \
    --include='*.rs' --include='Cargo.toml' crates \
    | grep -v '^crates/testkit/' \
    | grep -vE '//.*(proptest|rand|criterion)|#!?\[.*\]|^\s*#' \
    || true)
if [ -n "$violations" ]; then
    echo "forbidden external test dependencies referenced outside crates/testkit:" >&2
    echo "$violations" >&2
    exit 1
fi
echo "ok: no proptest / rand:: / criterion outside crates/testkit"

echo "== build (release) =="
if ! cargo build --release 2>/dev/null; then
    echo "online build failed; retrying with --offline"
    cargo build --release --offline
fi

echo "== tests =="
cargo test -q

echo "== benches compile =="
cargo build --benches -p bench --offline 2>/dev/null || cargo build --benches -p bench

echo "== campaign smoke (offline, bounded) =="
# A short wall-clock campaign over every registered target, seeded for
# reproducibility. The committed corpus is copied to a scratch dir so
# fuzzing never mutates the checkout; a nonzero exit (any differential
# failure) fails CI.
scratch=$(mktemp -d)
cp corpus/*.seed "$scratch"/ 2>/dev/null || true
./target/release/silver-fuzz --target all --shards 2 --budget 30s --seed 1 \
    --corpus "$scratch" --report "$scratch/BENCH_campaign.json" \
    --metrics "$scratch/BENCH_metrics.json" --no-triage
rm -rf "$scratch"

echo "== observability smoke =="
# The tracing/profiling/VCD paths work end-to-end on a real program,
# and the campaign metrics registry emits per-target histograms. All
# artifacts go to a scratch dir; markers are grepped, not eyeballed.
obs_scratch=$(mktemp -d)
# The paper's sort application (the same source examples/sort.rs runs).
cat > "$obs_scratch/sort.cml" <<'SRC'
val input = read_all ();
val lines = split_lines input;
val sorted = merge_sort string_lt lines;
val _ = print (join_lines sorted);
SRC
printf 'pear\napple\nmango\n' > "$obs_scratch/in.txt"
# Traced + syscall-traced + profiled ISA run.
./target/release/silverc "$obs_scratch/sort.cml" \
    --stdin "$obs_scratch/in.txt" \
    --trace --trace-syscalls --profile "$obs_scratch/isa.folded" \
    > "$obs_scratch/out.txt" 2> "$obs_scratch/err.txt"
grep -q 'apple' "$obs_scratch/out.txt"
grep -q 'retire log' "$obs_scratch/err.txt"
grep -q 'syscall trace' "$obs_scratch/err.txt"
grep -Eq 'write\(conf=' "$obs_scratch/err.txt"
grep -Eq 'rt_|main' "$obs_scratch/isa.folded"
# Traced lockstep: RTL backend with a VCD dump and a cycle profile.
./target/release/silverc "$obs_scratch/sort.cml" \
    --stdin "$obs_scratch/in.txt" --backend rtl \
    --vcd "$obs_scratch/run.vcd" --profile "$obs_scratch/rtl.folded" \
    > "$obs_scratch/out_rtl.txt" 2> "$obs_scratch/err_rtl.txt"
cmp -s "$obs_scratch/out.txt" "$obs_scratch/out_rtl.txt"
grep -q '$scope module silver_cpu $end' "$obs_scratch/run.vcd"
grep -q '$dumpvars' "$obs_scratch/run.vcd"
grep -Eq 'rt_|main' "$obs_scratch/rtl.folded"
# Jet engine smoke: the translation-cache engine must produce the same
# bytes as the reference interpreter, with the lockstep shadow oracle
# (theorem J) checking every retire along the way.
./target/release/silverc "$obs_scratch/sort.cml" \
    --stdin "$obs_scratch/in.txt" --engine jet --shadow \
    > "$obs_scratch/out_jet.txt" 2> "$obs_scratch/err_jet.txt"
cmp -s "$obs_scratch/out.txt" "$obs_scratch/out_jet.txt"
# Snapshot/replay: a checkpointed run writes a rolling checkpoint and
# produces the same stdout as the plain run; the checkpoint resumes on
# either engine and still produces byte-identical stdout (the CLI face
# of the crash-resume equivalence the t-snap target fuzzes).
./target/release/silverc "$obs_scratch/sort.cml" \
    --stdin "$obs_scratch/in.txt" \
    --checkpoint "$obs_scratch/ck.snap" --checkpoint-every 2000 \
    > "$obs_scratch/out_ck.txt" 2> /dev/null
cmp -s "$obs_scratch/out.txt" "$obs_scratch/out_ck.txt"
test -f "$obs_scratch/ck.snap"
./target/release/silverc --resume "$obs_scratch/ck.snap" \
    > "$obs_scratch/out_resume.txt" 2> /dev/null
cmp -s "$obs_scratch/out.txt" "$obs_scratch/out_resume.txt"
./target/release/silverc --resume "$obs_scratch/ck.snap" --engine jet \
    > "$obs_scratch/out_resume_jet.txt" 2> /dev/null
cmp -s "$obs_scratch/out.txt" "$obs_scratch/out_resume_jet.txt"
# Campaign metrics: a tiny seeded campaign must emit latency histograms.
./target/release/silver-fuzz --target t2 --budget 30 --seed 1 --no-triage \
    --report "$obs_scratch/BENCH_campaign.json" \
    --metrics "$obs_scratch/BENCH_metrics.json" --progress \
    2> "$obs_scratch/fuzz_err.txt"
grep -q 'round 1' "$obs_scratch/fuzz_err.txt"
grep -q '"metric":"histogram","name":"campaign.case_us.t2"' \
    "$obs_scratch/BENCH_metrics.json"
rm -rf "$obs_scratch"
echo "ok: trace/syscalls/profile/vcd/metrics all produce their markers"

echo "== service smoke (unix socket, two tenants, one cache hit) =="
# Boot the execution server on a Unix socket with tracing and periodic
# stats on, submit the same program from two tenants (the second must
# be a cache hit), fetch both span trees over the Trace op, poll live
# stats, check the shutdown path, and hold the bench artifact — now a
# time series — to its schema.
svc_scratch=$(mktemp -d)
./target/release/silver-serve --unix "$svc_scratch/svc.sock" --shards 2 \
    --bench "$svc_scratch/BENCH_service.json" \
    --trace-dir "$svc_scratch/traces" --stats-every 150 \
    2> "$svc_scratch/serve.log" &
svc_pid=$!
for _ in $(seq 1 100); do
    [ -S "$svc_scratch/svc.sock" ] && break
    sleep 0.1
done
test -S "$svc_scratch/svc.sock"
./target/release/silver-client --unix "$svc_scratch/svc.sock" submit \
    --tenant alice --app hello --meta \
    > "$svc_scratch/alice.out" 2> "$svc_scratch/alice.err"
grep -q 'Hello from the verified stack!' "$svc_scratch/alice.out"
./target/release/silver-client --unix "$svc_scratch/svc.sock" submit \
    --tenant bob --app hello --meta \
    > "$svc_scratch/bob.out" 2> "$svc_scratch/bob.err"
cmp -s "$svc_scratch/alice.out" "$svc_scratch/bob.out"
grep -q 'cached=true' "$svc_scratch/bob.err"
./target/release/silver-client --unix "$svc_scratch/svc.sock" stats \
    > "$svc_scratch/stats.txt"
grep -q '"name":"service.cache.hits","value":1' "$svc_scratch/stats.txt"
# Trace op: alice's (executed) job shows the full lifecycle, bob's
# (cached) a hit-and-reply; the JSON form is a Chrome trace document.
alice_job=$(sed -nE 's/.*job=([0-9]+).*/\1/p' "$svc_scratch/alice.err")
bob_job=$(sed -nE 's/.*job=([0-9]+).*/\1/p' "$svc_scratch/bob.err")
./target/release/silver-client --unix "$svc_scratch/svc.sock" trace "$alice_job" \
    > "$svc_scratch/alice.trace"
for span in admit cache_lookup tenant_reserve queue_wait compile exec reply; do
    grep -q "$span" "$svc_scratch/alice.trace"
done
./target/release/silver-client --unix "$svc_scratch/svc.sock" trace "$bob_job" \
    > "$svc_scratch/bob.trace"
grep -q 'cache_lookup' "$svc_scratch/bob.trace"
if grep -q ' exec ' "$svc_scratch/bob.trace"; then
    echo "a cache hit must not carry an exec span" >&2
    exit 1
fi
./target/release/silver-client --unix "$svc_scratch/svc.sock" trace "$alice_job" --json \
    > "$svc_scratch/alice.trace.json"
grep -q '"traceEvents":\[' "$svc_scratch/alice.trace.json"
grep -q '"ph":"X"' "$svc_scratch/alice.trace.json"
# Live stats: two polls print qps / inflight / per-shard utilization.
./target/release/silver-client --unix "$svc_scratch/svc.sock" top --every 100 --count 2 \
    > "$svc_scratch/top.out"
[ "$(wc -l < "$svc_scratch/top.out")" -eq 2 ]
grep -q 'qps=' "$svc_scratch/top.out"
grep -q 'inflight=' "$svc_scratch/top.out"
grep -q 'shards\[' "$svc_scratch/top.out"
# Let a few periodic stats lines land before shutting down.
sleep 0.5
./target/release/silver-client --unix "$svc_scratch/svc.sock" shutdown
wait "$svc_pid"
grep -q '"suite":"service"' "$svc_scratch/BENCH_service.json"
grep -q '"divergences":0' "$svc_scratch/BENCH_service.json"
grep -q '"qps":' "$svc_scratch/BENCH_service.json"
# Time series: multiple summary lines, seq strictly increasing down
# the file (live `stats`/`top` polls share the snapshot counter, so
# gaps are fine — the order is the contract, not density).
[ "$(grep -c '"suite":"service"' "$svc_scratch/BENCH_service.json")" -ge 2 ]
grep -q '"seq":0' "$svc_scratch/BENCH_service.json"
grep -o '"seq":[0-9]*' "$svc_scratch/BENCH_service.json" \
    | cut -d: -f2 | sort -cnu
grep -q '"inflight":' "$svc_scratch/BENCH_service.json"
# Shutdown dumped the flight recorder as a Perfetto-loadable document.
grep -q '"traceEvents":\[' "$svc_scratch/traces/TRACE_shutdown.json"
grep -q '"cat":"flight"' "$svc_scratch/traces/TRACE_shutdown.json"
rm -rf "$svc_scratch"
echo "ok: serve/submit/cache-hit/trace/top/stats/shutdown round-trip over unix socket"

echo "== divergence drill (fault injection dumps the flight recorder) =="
# Boot a server with the test-only ALU fault armed and full shadow
# sampling: the first executed job must fail as a divergence and the
# flight recorder must auto-dump a trace naming the job's lifecycle.
div_scratch=$(mktemp -d)
./target/release/silver-serve --unix "$div_scratch/svc.sock" --shards 1 \
    --shadow-every 1 --fault-xor 1 --trace-dir "$div_scratch/traces" \
    2> "$div_scratch/serve.log" &
div_pid=$!
for _ in $(seq 1 100); do
    [ -S "$div_scratch/svc.sock" ] && break
    sleep 0.1
done
test -S "$div_scratch/svc.sock"
if ./target/release/silver-client --unix "$div_scratch/svc.sock" submit \
    --tenant drill --app hello > /dev/null 2> "$div_scratch/drill.err"; then
    echo "fault-injected job must not exit cleanly" >&2
    exit 1
fi
grep -q 'divergence' "$div_scratch/drill.err"
div_dump=$(ls "$div_scratch"/traces/TRACE_divergence_job*.json)
for span in admit compile image_build shadow_check; do
    grep -q "\"name\":\"$span\"" "$div_dump"
done
grep -q '"cat":"flight"' "$div_dump"
./target/release/silver-client --unix "$div_scratch/svc.sock" shutdown
wait "$div_pid"
rm -rf "$div_scratch"
echo "ok: injected divergence auto-dumps a lifecycle-complete flight record"

echo "== service hygiene guard =="
# Serving jet-by-default is only safe while shadow sampling defaults ON,
# and a cached result may never be served without the cache-version
# check (a stale-schema hit must read as a miss, not a wrong answer).
grep -q 'every_jobs: 8' crates/service/src/lib.rs
grep -q 'entry.version == CACHE_VERSION' crates/service/src/cache.rs
echo "ok: shadow sampling defaults on; cache lookups are version-checked"

echo "== tracing hygiene guard =="
# Span ordering must come from logical clocks, never wall time: the
# trace module may not read the clock at all (wall readings enter only
# as caller-supplied annotations), timestamps in the Chrome dump are
# the logical clocks, and the canonical determinism form must strip
# both the wall annotations and the physical shard placement.
if grep -nE 'std::time|SystemTime|Instant' crates/obs/src/trace.rs; then
    echo "obs::trace must not read the clock" >&2
    exit 1
fi
# …and the Chrome events' ts fields interpolate those clocks (begin_lc
# or the flight ring sequence), which the clock-free check above keeps
# honest: there is no wall reading in the module to leak into ts.
grep -q '\\"ts\\":{}' crates/obs/src/trace.rs
if sed -n '/pub fn canonical_text/,/^    }/p' crates/obs/src/trace.rs \
    | grep -qE 'wall_us|shard'; then
    echo "canonical trace form must strip wall/shard annotations" >&2
    exit 1
fi
# The builder's wall arguments are annotations, not clocks it takes.
grep -q 'wall_us: Option<u64>' crates/obs/src/trace.rs
echo "ok: span ordering is logical-clock only; wall time is annotation-only"

echo "== observability hygiene guard =="
# Tracing must stay off by default: every plain entry point must
# delegate to its observed sibling with the no-op sink, the observed
# stack runner must degrade to the plain one when nothing is asked
# for, and campaign progress must default off.
grep -q 'run_rtl_program_observed(initial, cfg, max_cycles, &mut interp::NoCycleObserver)' \
    crates/silver/src/lockstep.rs
grep -q 'run_verilog_program_observed(initial, cfg, max_cycles, &mut verilog::eval::NoCycleObserver)' \
    crates/silver/src/verilog_level.rs
grep -q 'self.run_traced(fuel, cov, &mut NoTrace)' crates/ag32/src/state.rs
grep -q 'run_with_oracle_traced(state, layout, ffi_names, fs, fuel, None)' \
    crates/basis/src/machine.rs
grep -q 'if ocfg.is_off()' crates/core/src/stack.rs
grep -q 'progress: false' crates/campaign/src/engine.rs
# And the no-op sinks must really be no-ops (const ACTIVE = false).
grep -A1 'impl Tracer for NoTrace' crates/ag32/src/trace.rs | grep -q 'ACTIVE: bool = false'
echo "ok: tracing is off by default (plain paths use the no-op sinks)"

echo "== engine hygiene guard =="
# The reference interpreter must stay the default engine, shadow mode
# must default off, and the engines bench must never time a shadowed
# (or fault-injected) configuration — shadow is a checking tool, not a
# production setting, and the fault hook exists only so tests can prove
# the shadow oracle catches executor bugs.
grep -q 'engine: Engine::Ref' crates/core/src/stack.rs
grep -q 'shadow: None,' crates/core/src/stack.rs
grep -q 'alu_fault_xor: 0' crates/jet/src/engine.rs
if grep -q 'shadow: Some' crates/bench/benches/engines.rs; then
    echo "benches/engines.rs must not time a shadowed run" >&2
    exit 1
fi
# And shadow mode must actually be exercised where checking happens:
# the engine tests and the t-jet campaign target.
grep -q 'run_shadow' tests/engines.rs
grep -q 'run_shadow' crates/campaign/src/targets.rs
echo "ok: ref engine default, shadow off by default but exercised in checks"

echo "== snapshot hygiene guard =="
# The snapshot format must stay deterministic: the writers may not read
# the clock, and sparse memory must be serialised in canonical page-id
# order (all-zero pages omitted) so ref and jet captures byte-match.
if grep -nE 'std::time|SystemTime|Instant' \
    crates/silver/src/snapshot.rs crates/basis/src/snap.rs; then
    echo "snapshot writers must not read the clock" >&2
    exit 1
fi
grep -q 'nonzero_resident_page_ids' crates/silver/src/snapshot.rs
grep -q 'sort_unstable' crates/ag32/src/mem.rs
# Rolling checkpoints must go through the tmp-plus-rename path so a
# crash mid-write never leaves a torn file.
grep -q 'write_rolling' crates/core/src/stack.rs
echo "ok: snapshot writers are clock-free and canonically ordered"

echo "== engines bench artifact check =="
# `cargo bench --bench engines` (not run here: it times multi-second
# reference-interpreter workloads) emits BENCH_engines.json. When one
# exists in the workspace, hold it to the testkit::bench line schema.
if [ -f BENCH_engines.json ]; then
    while IFS= read -r line; do
        [ -n "$line" ] || continue
        for key in '"suite":"engines"' '"name":' '"median_ns":' '"p95_ns":'; do
            if ! printf '%s' "$line" | grep -qF "$key"; then
                echo "BENCH_engines.json line missing $key: $line" >&2
                exit 1
            fi
        done
    done < BENCH_engines.json
    echo "ok: BENCH_engines.json lines carry the bench schema"
else
    echo "ok: no BENCH_engines.json in workspace (run cargo bench --bench engines to emit one)"
fi

echo "== corpus hygiene =="
# Committed seed files must stay in the two-line format with at most
# 512 choices (the corpus entry cap in crates/campaign/src/corpus.rs).
for f in corpus/*.seed; do
    [ -e "$f" ] || continue
    lines=$(wc -l < "$f")
    choices=$(tail -n 1 "$f" | wc -w)
    if [ "$lines" -gt 2 ] || [ "$choices" -gt 512 ]; then
        echo "corpus seed $f exceeds caps (lines=$lines choices=$choices)" >&2
        exit 1
    fi
done
echo "ok: corpus seeds within format caps"

echo "CI green (TESTKIT_SEED=${TESTKIT_SEED:-default})"
