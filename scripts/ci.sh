#!/usr/bin/env bash
# Tier-1 CI for the silver-stack workspace.
#
# Everything here is hermetic: no registry access is required (or
# attempted — the build falls back to --offline when the network is
# unavailable), randomness comes only from the in-tree `testkit` PRNG
# seeded by TESTKIT_SEED, and a guard asserts no crate outside
# crates/testkit reaches for proptest / rand / criterion again.
#
# Usage: scripts/ci.sh
#   TESTKIT_SEED=0x...  derive all property-test cases from this seed
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dependency hygiene guard =="
# No crate outside testkit may mention the old external dependencies.
# (testkit itself only names them in docs/comments.)
violations=$(grep -RnE '\bproptest\b|\brand::|\bcriterion\b' \
    --include='*.rs' --include='Cargo.toml' crates \
    | grep -v '^crates/testkit/' \
    | grep -vE '//.*(proptest|rand|criterion)|#!?\[.*\]|^\s*#' \
    || true)
if [ -n "$violations" ]; then
    echo "forbidden external test dependencies referenced outside crates/testkit:" >&2
    echo "$violations" >&2
    exit 1
fi
echo "ok: no proptest / rand:: / criterion outside crates/testkit"

echo "== build (release) =="
if ! cargo build --release 2>/dev/null; then
    echo "online build failed; retrying with --offline"
    cargo build --release --offline
fi

echo "== tests =="
cargo test -q

echo "== benches compile =="
cargo build --benches -p bench --offline 2>/dev/null || cargo build --benches -p bench

echo "== campaign smoke (offline, bounded) =="
# A short wall-clock campaign over every registered target, seeded for
# reproducibility. The committed corpus is copied to a scratch dir so
# fuzzing never mutates the checkout; a nonzero exit (any differential
# failure) fails CI.
scratch=$(mktemp -d)
cp corpus/*.seed "$scratch"/ 2>/dev/null || true
./target/release/silver-fuzz --target all --shards 2 --budget 30s --seed 1 \
    --corpus "$scratch" --report "$scratch/BENCH_campaign.json" --no-triage
rm -rf "$scratch"

echo "== corpus hygiene =="
# Committed seed files must stay in the two-line format with at most
# 512 choices (the corpus entry cap in crates/campaign/src/corpus.rs).
for f in corpus/*.seed; do
    [ -e "$f" ] || continue
    lines=$(wc -l < "$f")
    choices=$(tail -n 1 "$f" | wc -w)
    if [ "$lines" -gt 2 ] || [ "$choices" -gt 512 ]; then
        echo "corpus seed $f exceeds caps (lines=$lines choices=$choices)" >&2
        exit 1
    fi
done
echo "ok: corpus seeds within format caps"

echo "CI green (TESTKIT_SEED=${TESTKIT_SEED:-default})"
